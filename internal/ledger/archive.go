package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// ManifestKind identifies a run-manifest document.
const ManifestKind = "prose-run-manifest"

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// Manifest is the durable record of one tuning run: identity (what was
// tuned, under which options, on which machine), shape (engine, fleet,
// parallelism), outcome (result summary, status tallies), and telemetry
// (final metrics snapshot with quantiles, decision-log digest). It is
// content-addressed: ID is the SHA-256 of the canonical JSON encoding
// with the ID field blank, so a manifest can be verified against its
// name and identical facts always hash identically.
type Manifest struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	V    int    `json:"v"`

	// Identity: everything that shapes the evaluation stream, plus the
	// non-fingerprinted knobs worth comparing across runs.
	Model       string  `json:"model"`
	Fingerprint string  `json:"fingerprint"`
	Machine     string  `json:"machine"`
	Engine      string  `json:"engine"`
	Seed        int64   `json:"seed"`
	WholeModel  bool    `json:"whole_model,omitempty"`
	Budget      int     `json:"budget,omitempty"`
	MaxRelError float64 `json:"max_rel_error"`
	MinSpeedup  float64 `json:"min_speedup"`
	Parallelism int     `json:"parallelism,omitempty"`

	// Timing. StartUnixNS is wall-clock identity (two otherwise
	// identical runs archive as two entries); WallMS is the run's
	// duration.
	StartUnixNS int64 `json:"start_unix_ns"`
	WallMS      int64 `json:"wall_ms"`

	// Outcome.
	Outcome      string         `json:"outcome"` // completed | aborted | cancelled
	Converged    bool           `json:"converged"`
	Evaluations  int            `json:"evaluations"`
	Resumed      int            `json:"resumed,omitempty"`
	Salvaged     int            `json:"salvaged,omitempty"`
	Statuses     map[string]int `json:"statuses,omitempty"`
	TotalAtoms   int            `json:"total_atoms"`
	MinimalAtoms int            `json:"minimal_atoms"`
	BestSpeedup  float64        `json:"best_speedup,omitempty"`
	BestRelError float64        `json:"best_rel_error,omitempty"`
	BestLowered  int            `json:"best_lowered,omitempty"`

	// Telemetry. Fleet is the coordinator's final counters (worker
	// metrics arrive merged inside Metrics under fleet.workers.*);
	// Quantiles summarizes each metrics histogram's p50/p95/p99.
	Fleet     *fleet.Stats             `json:"fleet,omitempty"`
	Metrics   *obs.Snapshot            `json:"metrics,omitempty"`
	Quantiles map[string]obs.Quantiles `json:"quantiles,omitempty"`

	// Pointers to the run's sidecar artifacts.
	JournalPath    string `json:"journal_path,omitempty"`
	DecisionPath   string `json:"decision_path,omitempty"`
	DecisionDigest string `json:"decision_digest,omitempty"`
	DecisionEvents int64  `json:"decision_events,omitempty"`
}

// ComputeID returns the manifest's content address: the hex SHA-256 of
// its canonical JSON with the ID field blank.
func (m *Manifest) ComputeID() (string, error) {
	c := *m
	c.ID = ""
	b, err := CanonicalJSON(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// IndexEntry is one run's line in the ledger index — the facts `prose
// runs` lists without loading every manifest.
type IndexEntry struct {
	ID          string  `json:"id"`
	Model       string  `json:"model"`
	Fingerprint string  `json:"fingerprint"`
	StartUnixNS int64   `json:"start_unix_ns"`
	WallMS      int64   `json:"wall_ms"`
	Evaluations int     `json:"evaluations"`
	BestSpeedup float64 `json:"best_speedup"`
	Outcome     string  `json:"outcome"`
	Converged   bool    `json:"converged"`
}

func (m *Manifest) indexEntry() IndexEntry {
	return IndexEntry{
		ID: m.ID, Model: m.Model, Fingerprint: m.Fingerprint,
		StartUnixNS: m.StartUnixNS, WallMS: m.WallMS,
		Evaluations: m.Evaluations, BestSpeedup: m.BestSpeedup,
		Outcome: m.Outcome, Converged: m.Converged,
	}
}

const (
	indexFile = "index.jsonl"
	runsDir   = "runs"
)

// Ledger is an on-disk archive of run manifests: one JSON document per
// run under <dir>/runs/<id>.json plus an append-only <dir>/index.jsonl
// for cheap listing. It accumulates across runs and processes — Put
// appends with O_APPEND semantics, so concurrent tunes into one ledger
// interleave whole lines, never corrupt each other.
type Ledger struct{ dir string }

// Open opens (creating if needed) the ledger rooted at dir.
func Open(dir string) (*Ledger, error) {
	if err := os.MkdirAll(filepath.Join(dir, runsDir), 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	return &Ledger{dir: dir}, nil
}

// Dir returns the ledger's root directory.
func (l *Ledger) Dir() string { return l.dir }

// Put archives a manifest: computes its content address, writes
// runs/<id>.json atomically, and appends the index line. Returns the
// ID. The manifest's ID field is set on success.
func (l *Ledger) Put(m *Manifest) (string, error) {
	id, err := m.ComputeID()
	if err != nil {
		return "", err
	}
	m.ID = id
	b, err := CanonicalJSON(m)
	if err != nil {
		return "", err
	}
	final := filepath.Join(l.dir, runsDir, id+".json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return "", fmt.Errorf("ledger: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("ledger: %w", err)
	}
	line, err := json.Marshal(m.indexEntry())
	if err != nil {
		return "", err
	}
	idx, err := os.OpenFile(filepath.Join(l.dir, indexFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return "", fmt.Errorf("ledger: %w", err)
	}
	_, werr := idx.Write(append(line, '\n'))
	if cerr := idx.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("ledger: appending index: %w", werr)
	}
	return id, nil
}

// List returns the archived runs in index order (oldest first).
// Malformed index lines — a torn tail from a killed process — are
// skipped, and a missing index falls back to scanning runs/ so a
// ledger with a lost index still lists.
func (l *Ledger) List() ([]IndexEntry, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, indexFile))
	if os.IsNotExist(err) {
		return l.listFromRuns()
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	var out []IndexEntry
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e IndexEntry
		if jerr := json.Unmarshal([]byte(line), &e); jerr != nil || e.ID == "" {
			continue // torn or foreign line: skip, don't fail the listing
		}
		out = append(out, e)
	}
	return out, nil
}

// listFromRuns rebuilds a listing from the manifests themselves.
func (l *Ledger) listFromRuns() ([]IndexEntry, error) {
	dir := filepath.Join(l.dir, runsDir)
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	var out []IndexEntry
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		m, merr := LoadManifest(filepath.Join(dir, de.Name()))
		if merr != nil {
			continue
		}
		out = append(out, m.indexEntry())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNS < out[j].StartUnixNS })
	return out, nil
}

// Get resolves a run reference — a full ID, a unique ID prefix, or a
// manifest file path — to its manifest.
func (l *Ledger) Get(ref string) (*Manifest, error) {
	if l != nil {
		if m, err := l.getByPrefix(ref); err == nil {
			return m, nil
		} else if !os.IsNotExist(asPathError(err)) && !isNoMatch(err) {
			return nil, err
		}
	}
	// Fall back to treating the reference as a manifest path.
	if _, serr := os.Stat(ref); serr == nil {
		return LoadManifest(ref)
	}
	if l == nil {
		return nil, fmt.Errorf("ledger: %q is not a manifest path (no ledger directory given)", ref)
	}
	return nil, fmt.Errorf("ledger: no run matching %q in %s", ref, l.dir)
}

type noMatchError struct{ ref string }

func (e *noMatchError) Error() string { return fmt.Sprintf("ledger: no run matching %q", e.ref) }

func isNoMatch(err error) bool { _, ok := err.(*noMatchError); return ok }

func asPathError(err error) error { return err }

func (l *Ledger) getByPrefix(ref string) (*Manifest, error) {
	if ref == "" {
		return nil, &noMatchError{ref: ref}
	}
	dir := filepath.Join(l.dir, runsDir)
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var matches []string
	for _, de := range names {
		name := strings.TrimSuffix(de.Name(), ".json")
		if strings.HasPrefix(name, ref) && strings.HasSuffix(de.Name(), ".json") {
			matches = append(matches, de.Name())
		}
	}
	switch len(matches) {
	case 0:
		return nil, &noMatchError{ref: ref}
	case 1:
		return LoadManifest(filepath.Join(dir, matches[0]))
	default:
		sort.Strings(matches)
		short := make([]string, len(matches))
		for i, m := range matches {
			short[i] = strings.TrimSuffix(m, ".json")[:12]
		}
		return nil, fmt.Errorf("ledger: %q is ambiguous: matches %s", ref, strings.Join(short, ", "))
	}
}

// LoadManifest reads and validates one manifest document. Empty,
// truncated, or foreign files are graceful errors, never panics.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		return nil, fmt.Errorf("ledger: %s: empty manifest", path)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ledger: %s: not a run manifest: %w", path, err)
	}
	if m.Kind != ManifestKind {
		return nil, fmt.Errorf("ledger: %s: kind %q, want %q", path, m.Kind, ManifestKind)
	}
	return &m, nil
}
