// Package ledger is the tuner's cross-run observability layer: a
// search-decision telemetry stream, a persistent on-disk archive of run
// manifests, and the analyzers behind `prose runs` and `prose compare`.
//
// A single tune's telemetry (spans, metrics, the journal) describes one
// run; the ledger makes runs durable and comparable across processes,
// machines, and time — the corpus the ROADMAP's surrogate-search item
// will train on (a decision-log replay feeding internal/predict
// features is the intended follow-on seam).
//
// Three layers:
//
//   - DecisionLog streams the search's per-round candidate lifecycle
//     (proposed → evaluated/cached/pruned → accepted/rejected, with the
//     evolving best-so-far and Pareto frontier) to an append-only JSONL
//     sidecar. The stream is derived only from deterministic search
//     state, so it is byte-stable at every parallelism level and across
//     kill/-resume cycles, and it never touches the byte-deterministic
//     evaluation journal.
//   - Ledger archives one content-addressed Manifest per run (program +
//     options fingerprint, machine, engine, fleet shape, final metrics
//     snapshot with quantiles, decision-log digest, result summary)
//     under an indexed directory that accumulates across runs.
//   - Compare and Funnel analyze archived runs: speedup/error/evals/
//     metrics deltas with configurable regression thresholds, and the
//     per-round search-funnel table.
package ledger

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/search"
)

// DecisionLogKind identifies a decision-log header line.
const DecisionLogKind = "prose-decision-log"

// DecisionLogVersion is the current decision-log format version.
const DecisionLogVersion = 1

// DecisionPath derives the conventional decision-log path for a
// journal: the journal path plus ".decisions".
func DecisionPath(journalPath string) string { return journalPath + ".decisions" }

// DecisionHeader is the first line of a decision log.
type DecisionHeader struct {
	Kind        string `json:"kind"`
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
	Model       string `json:"model"`
}

// DecisionEvent is one decision-log line after the header. Ev selects
// the shape: "round" opens a round (Round, Candidates), "candidate"
// records one candidate's lifecycle (Seq..Accepted), "round_end" closes
// it with the funnel tallies and post-round search state (Evaluated..
// Frontier).
type DecisionEvent struct {
	Ev         string `json:"ev"`
	Round      int    `json:"round"`
	Candidates int    `json:"candidates,omitempty"`

	Seq      int     `json:"seq,omitempty"`
	AKey     string  `json:"akey,omitempty"`
	Outcome  string  `json:"outcome,omitempty"`
	Status   string  `json:"status,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"`
	RelError float64 `json:"rel_error,omitempty"`
	Lowered  int     `json:"lowered,omitempty"`
	Accepted bool    `json:"accepted,omitempty"`

	Evaluated   int     `json:"evaluated,omitempty"`
	Cached      int     `json:"cached,omitempty"`
	Pruned      int     `json:"pruned,omitempty"`
	Accepts     int     `json:"accepts,omitempty"`
	Evals       int     `json:"evals,omitempty"`
	BestSpeedup float64 `json:"best_speedup,omitempty"`
	BestAKey    string  `json:"best_akey,omitempty"`
	Frontier    int     `json:"frontier,omitempty"`
}

// Decision-log event types.
const (
	EvRound     = "round"
	EvCandidate = "candidate"
	EvRoundEnd  = "round_end"
)

// DecisionLog streams search decisions to an append-only JSONL file.
// It implements search.DecisionSink. Writes are buffered and flushed at
// each round end, so the per-candidate cost is an in-memory append —
// ledger writes stay off the evaluation hot path (BenchmarkLedgerAppend
// pins the per-event cost). Durability is deliberately weaker than the
// journal's fsync-per-record: the stream is derived state, and a
// resumed run recreates it byte-identically from the replayed journal.
type DecisionLog struct {
	f       *os.File
	w       *bufio.Writer
	digest  hash.Hash
	metrics *obs.Registry
	events  int64
	err     error // sticky first write error, surfaced at Close
	closed  bool
}

// CreateDecisionLog creates (or truncates) the decision log at path and
// writes its header. Truncation is correct even on -resume: the stream
// is deterministic, so the resumed search rewrites it from round 1 and
// ends with the bytes an uninterrupted run would have produced.
func CreateDecisionLog(path, fingerprint, model string) (*DecisionLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: creating decision log: %w", err)
	}
	dl := &DecisionLog{f: f, w: bufio.NewWriter(f), digest: sha256.New()}
	hdr := DecisionHeader{Kind: DecisionLogKind, V: DecisionLogVersion, Fingerprint: fingerprint, Model: model}
	if err := dl.writeLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return dl, nil
}

// SetMetrics attaches a registry: the log bumps the ledger_decision_*
// counters as events are written. Nil-safe no-op.
func (dl *DecisionLog) SetMetrics(reg *obs.Registry) { dl.metrics = reg }

func (dl *DecisionLog) writeLine(v any) error {
	if dl.err != nil {
		return dl.err
	}
	b, err := json.Marshal(v)
	if err == nil {
		b = append(b, '\n')
		dl.digest.Write(b)
		_, err = dl.w.Write(b)
	}
	if err != nil {
		dl.err = fmt.Errorf("ledger: writing decision log: %w", err)
	}
	return dl.err
}

func (dl *DecisionLog) event(ev DecisionEvent) {
	if dl.writeLine(ev) == nil {
		dl.events++
		dl.metrics.Counter(obs.MetricDecisionEvents).Add(1)
	}
}

// RoundStart implements search.DecisionSink.
func (dl *DecisionLog) RoundStart(round, candidates int) {
	dl.metrics.Counter(obs.MetricDecisionRounds).Add(1)
	dl.event(DecisionEvent{Ev: EvRound, Round: round, Candidates: candidates})
}

// Decide implements search.DecisionSink.
func (dl *DecisionLog) Decide(d search.Decision) {
	ev := DecisionEvent{
		Ev: EvCandidate, Round: d.Round, Seq: d.Seq, AKey: d.AKey,
		Outcome: d.Outcome, Accepted: d.Accepted,
	}
	if d.Outcome != search.DecisionPruned {
		ev.Status = d.Status.String()
		ev.Speedup = d.Speedup
		ev.RelError = d.RelError
		ev.Lowered = d.Lowered
	}
	dl.event(ev)
}

// RoundEnd implements search.DecisionSink; the buffered round is
// flushed here, between batches, never inside one.
func (dl *DecisionLog) RoundEnd(s search.RoundSummary) {
	dl.event(DecisionEvent{
		Ev: EvRoundEnd, Round: s.Round, Candidates: s.Candidates,
		Evaluated: s.Evaluated, Cached: s.Cached, Pruned: s.Pruned,
		Accepts: s.Accepted, Evals: s.Evals,
		BestSpeedup: s.BestSpeedup, BestAKey: s.BestAKey, Frontier: s.Frontier,
	})
	if dl.err == nil {
		if err := dl.w.Flush(); err != nil {
			dl.err = fmt.Errorf("ledger: flushing decision log: %w", err)
		}
	}
}

// Events returns the number of events written so far.
func (dl *DecisionLog) Events() int64 { return dl.events }

// Digest returns the hex SHA-256 of every byte written so far
// (header included) — the content digest archived in the run manifest.
func (dl *DecisionLog) Digest() string { return hex.EncodeToString(dl.digest.Sum(nil)) }

// Close flushes and closes the log, returning the first error the
// stream hit. Idempotent.
func (dl *DecisionLog) Close() error {
	if dl.closed {
		return dl.err
	}
	dl.closed = true
	if ferr := dl.w.Flush(); ferr != nil && dl.err == nil {
		dl.err = fmt.Errorf("ledger: flushing decision log: %w", ferr)
	}
	if cerr := dl.f.Close(); cerr != nil && dl.err == nil {
		dl.err = fmt.Errorf("ledger: closing decision log: %w", cerr)
	}
	return dl.err
}

// ReadDecisionLog reads a decision log back. A torn tail — a partial
// last line from a killed run — is tolerated and simply ends the
// stream; an empty or headerless file is an error, never a panic.
func ReadDecisionLog(path string) (DecisionHeader, []DecisionEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return DecisionHeader{}, nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdrLine, err := readLine(r)
	if err != nil || strings.TrimSpace(hdrLine) == "" {
		return DecisionHeader{}, nil, fmt.Errorf("ledger: %s: empty decision log", path)
	}
	var hdr DecisionHeader
	if err := json.Unmarshal([]byte(hdrLine), &hdr); err != nil || hdr.Kind != DecisionLogKind {
		return DecisionHeader{}, nil, fmt.Errorf("ledger: %s: not a decision log (bad header)", path)
	}
	if hdr.V != DecisionLogVersion {
		return DecisionHeader{}, nil, fmt.Errorf("ledger: %s: decision-log version %d, want %d", path, hdr.V, DecisionLogVersion)
	}
	var evs []DecisionEvent
	for {
		line, err := readLine(r)
		if line != "" {
			var ev DecisionEvent
			if jerr := json.Unmarshal([]byte(line), &ev); jerr != nil {
				break // torn tail: keep the complete prefix
			}
			evs = append(evs, ev)
		}
		if err != nil {
			break
		}
	}
	return hdr, evs, nil
}

// readLine reads one newline-terminated line; on io.EOF the partial
// remainder is returned with the error.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err == io.EOF && strings.TrimRight(line, "\n") != "" {
		// A line without its newline is a torn write: report it so the
		// caller can drop it, alongside the EOF.
		return "", err
	}
	return strings.TrimRight(line, "\n"), err
}
