package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelError(t *testing.T) {
	cases := []struct{ base, v, want float64 }{
		{2, 1, 0.5},
		{2, 2, 0},
		{-2, -1, 0.5},
		{0, 3, 3},
		{0, 0, 0},
		{1, -1, 2},
	}
	for _, c := range cases {
		if got := RelError(c.base, c.v); got != c.want {
			t.Errorf("RelError(%g, %g) = %g, want %g", c.base, c.v, got, c.want)
		}
	}
}

func TestRelErrorProperties(t *testing.T) {
	f := func(base, v float64) bool {
		if math.IsNaN(base) || math.IsNaN(v) || math.IsInf(base, 0) || math.IsInf(v, 0) {
			return true
		}
		got := RelError(base, v)
		return got >= 0 && (base != v || got == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestL2(t *testing.T) {
	if got := L2([]float64{3, 4}); got != 5 {
		t.Errorf("L2(3,4) = %g", got)
	}
	if got := L2(nil); got != 0 {
		t.Errorf("L2(nil) = %g", got)
	}
}

func TestL2TriangleInequalityProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for _, x := range append(a[:], b[:]...) {
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
		}
		sum := make([]float64, 4)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		return L2(sum) <= L2(a[:])+L2(b[:])+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRelErrSeriesAndL2RelErr(t *testing.T) {
	base := []float64{1, 2, 4}
	v := []float64{1, 1, 2}
	re, err := RelErrSeries(base, v)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 0.5}
	for i := range want {
		if re[i] != want[i] {
			t.Errorf("re[%d] = %g, want %g", i, re[i], want[i])
		}
	}
	l2, err := L2RelErr(base, v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-math.Sqrt(0.5)) > 1e-15 {
		t.Errorf("L2RelErr = %g", l2)
	}
	if _, err := RelErrSeries([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{1, -5, 3}); got != -5 {
		t.Errorf("MaxAbs = %g, want -5 (signed extreme)", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %g", got)
	}
}

func TestMaxAbsPerRow(t *testing.T) {
	// Two frames of width 3.
	frames := []float64{1, -2, 0, -4, 1, 5}
	got, err := MaxAbsPerRow(frames, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-4, -2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("col %d: %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := MaxAbsPerRow(frames, 4); err == nil {
		t.Error("non-divisible width accepted")
	}
}

func TestMaxRelErrPerFrame(t *testing.T) {
	base := []float64{1, 2, 10, 20}
	v := []float64{1, 1, 10, 10}
	got, err := MaxRelErrPerFrame(base, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("got %v", got)
	}
	if _, err := MaxRelErrPerFrame(base, v[:2], 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MaxRelErrPerFrame(base, v, 3); err == nil {
		t.Error("bad width accepted")
	}
}

func TestAnyNonFinite(t *testing.T) {
	if AnyNonFinite([]float64{1, 2, 3}) {
		t.Error("finite slice flagged")
	}
	if !AnyNonFinite([]float64{1, math.NaN()}) {
		t.Error("NaN missed")
	}
	if !AnyNonFinite([]float64{math.Inf(-1)}) {
		t.Error("-Inf missed")
	}
}

// TestRelErrorZeroBaselineContract pins the documented zero-baseline
// fallback: RelError(0, v) is the absolute difference |v| — an
// absolute quantity, not a relative one — and agreeing on zero is not
// an error.
func TestRelErrorZeroBaselineContract(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return RelError(0, v) == math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if got := RelError(0, 0); got != 0 {
		t.Errorf("RelError(0, 0) = %g, want 0", got)
	}
	// Negative zero baseline takes the same fallback (== compares equal).
	if got := RelError(math.Copysign(0, -1), 0.5); got != 0.5 {
		t.Errorf("RelError(-0, 0.5) = %g, want 0.5", got)
	}
}

// TestL2EmptySeriesContract pins the documented empty-series
// convention: the norm of an empty or nil series is 0, byte-for-byte
// indistinguishable from a series of exact zeros — so callers must
// check emptiness themselves when "no samples" must not pass as "no
// error".
func TestL2EmptySeriesContract(t *testing.T) {
	if got := L2([]float64{}); got != 0 {
		t.Errorf("L2(empty) = %g, want 0", got)
	}
	if L2([]float64{}) != L2([]float64{0, 0, 0}) {
		t.Error("empty series and all-zero series disagree — the documented ambiguity no longer holds")
	}
	if got, err := L2RelErr(nil, nil); err != nil || got != 0 {
		t.Errorf("L2RelErr(nil, nil) = %g, %v, want 0, nil", got, err)
	}
}
