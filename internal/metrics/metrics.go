// Package metrics implements the correctness quantification of §III-D:
// scalar metrics computed from model output, compared against the
// baseline via relative error, then aggregated with L2 norms. The three
// model-specific criteria of §IV-A are compositions of these primitives:
//
//	MPAS-A: per-timestep most extreme relative error of cell kinetic
//	        energy, L2 over time;
//	ADCIRC: relative error of the most extreme water surface elevation
//	        per grid point over the run, L2 across the grid;
//	MOM6:   relative error of the max CFL number per timestep, L2 over
//	        time.
package metrics

import (
	"fmt"
	"math"
)

// RelError returns |(base - v) / base|, the paper's relative error. A
// zero baseline falls back to the absolute difference so the metric
// stays finite (necessary conditions, not sufficient — §VI). The
// fallback means RelError(0, v) = |v| is an absolute quantity on a
// different scale from the relative values around it; thresholds for
// signals that legitimately cross zero should account for this.
// RelError(0, 0) is exactly 0: agreeing on zero is not an error.
func RelError(base, v float64) float64 {
	d := math.Abs(base - v)
	if base == 0 {
		return d
	}
	return d / math.Abs(base)
}

// L2 returns the Euclidean norm of xs. By convention the norm of an
// empty (or nil) series is 0 — indistinguishable from a series of
// exact zeros — so callers for whom "no samples" must not read as "no
// error" (e.g. a variant that produced no output frames) have to check
// emptiness themselves before aggregating.
func L2(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}

// RelErrSeries returns the element-wise relative error of variant
// against base.
func RelErrSeries(base, variant []float64) ([]float64, error) {
	if len(base) != len(variant) {
		return nil, fmt.Errorf("metrics: series lengths differ (%d vs %d)", len(base), len(variant))
	}
	out := make([]float64, len(base))
	for i := range base {
		out[i] = RelError(base[i], variant[i])
	}
	return out, nil
}

// L2RelErr is the common composition: element-wise relative error
// followed by an L2 norm (over time for MPAS-A and MOM6, over the grid
// for ADCIRC).
func L2RelErr(base, variant []float64) (float64, error) {
	re, err := RelErrSeries(base, variant)
	if err != nil {
		return 0, err
	}
	return L2(re), nil
}

// MaxAbs returns the element of xs with the largest magnitude (signed),
// used for "most extreme" reductions. It returns 0 for empty input.
func MaxAbs(xs []float64) float64 {
	var best float64
	for _, x := range xs {
		if math.Abs(x) > math.Abs(best) {
			best = x
		}
	}
	return best
}

// MaxAbsPerRow reduces a row-major series of frames (rows of width w) to
// the most extreme value per column — e.g. the most extreme water
// surface elevation at each ADCIRC grid point over the simulation.
func MaxAbsPerRow(frames []float64, w int) ([]float64, error) {
	if w <= 0 || len(frames)%w != 0 {
		return nil, fmt.Errorf("metrics: frame data length %d not divisible by width %d", len(frames), w)
	}
	out := make([]float64, w)
	for i, x := range frames {
		c := i % w
		if math.Abs(x) > math.Abs(out[c]) {
			out[c] = x
		}
	}
	return out, nil
}

// MaxRelErrPerFrame reduces two row-major frame series to the most
// extreme relative error within each frame — e.g. the worst kinetic
// energy error across MPAS-A cells at each timestep.
func MaxRelErrPerFrame(base, variant []float64, w int) ([]float64, error) {
	if len(base) != len(variant) {
		return nil, fmt.Errorf("metrics: frame series lengths differ (%d vs %d)", len(base), len(variant))
	}
	if w <= 0 || len(base)%w != 0 {
		return nil, fmt.Errorf("metrics: frame data length %d not divisible by width %d", len(base), w)
	}
	rows := len(base) / w
	out := make([]float64, rows)
	for r := 0; r < rows; r++ {
		worst := 0.0
		for c := 0; c < w; c++ {
			re := RelError(base[r*w+c], variant[r*w+c])
			if re > worst {
				worst = re
			}
		}
		out[r] = worst
	}
	return out, nil
}

// AnyNonFinite reports whether xs contains NaN or ±Inf (variants that
// slip past runtime traps still fail correctness).
func AnyNonFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
