package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// The MPAS-A correctness metric (§IV-A): worst relative error across the
// cells of each frame, then an L2 norm over the time series.
func Example() {
	baseline := []float64{1.0, 2.0, 1.0, 2.0} // two frames of two cells
	variant := []float64{1.0, 1.9, 1.1, 2.0}
	perStep, _ := metrics.MaxRelErrPerFrame(baseline, variant, 2)
	fmt.Printf("per-step worst error: %.3v\n", perStep)
	fmt.Printf("L2 over time: %.3f\n", metrics.L2(perStep))
	// Output:
	// per-step worst error: [0.05 0.1]
	// L2 over time: 0.112
}

func ExampleRelError() {
	fmt.Println(metrics.RelError(2.0, 1.5))
	fmt.Println(metrics.RelError(0, 0.25)) // zero baseline: absolute difference
	// Output:
	// 0.25
	// 0.25
}

func ExampleMaxAbsPerRow() {
	// The ADCIRC reduction: most extreme surface elevation per node over
	// the run (two timesteps of three nodes).
	series := []float64{0.2, -1.5, 0.3, -0.4, 1.1, 0.9}
	extremes, _ := metrics.MaxAbsPerRow(series, 3)
	fmt.Println(extremes)
	// Output: [-0.4 -1.5 0.9]
}
