// Package staticeval implements the paper's §V recommendations for
// making FPPT scalable by evaluating variants *statically* before paying
// for dynamic evaluation:
//
//   - a cost model that penalizes mixed-precision interprocedural data
//     flow as a function of the number of calls and the number of array
//     elements crossing each mismatched edge ("This suggests a strategy
//     for statically evaluating variant performance via a cost model…",
//     §IV-B, applied to both the MPAS-A flux functions and MOM6
//     variant 58);
//   - a vectorization-report filter that rejects variants whose loops
//     vectorize less than the baseline's ("one could filter out variants
//     that have less vectorization than the baseline prior to execution
//     by inspecting compiler vectorization reports", §V).
//
// The filter needs per-procedure call counts; as the paper suggests, it
// takes them from the baseline profile (a single instrumented run).
package staticeval

import (
	"fmt"
	"strings"

	ft "repro/internal/fortran"
	"repro/internal/gptl"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

// Verdict is the static evaluation of one precision assignment.
type Verdict struct {
	// CastPenalty is the estimated casting overhead in cycles:
	// Σ over mismatched flow edges of calls(callee) · elems · castCost.
	CastPenalty float64
	// MismatchedEdges is the number of flow-graph edges violating the
	// matching invariant before wrapper insertion.
	MismatchedEdges int
	// VecLoops / BaseVecLoops count vectorized loops in the variant and
	// the baseline.
	VecLoops, BaseVecLoops int
	// Reject is true when the filter recommends skipping dynamic
	// evaluation; Reasons explains why.
	Reject  bool
	Reasons []string
}

// Filter statically screens precision assignments for one model program.
type Filter struct {
	base  *ft.Program
	model *perfmodel.Model

	// calls maps procedure qualified names to baseline dynamic call
	// counts (from the profiled baseline run).
	calls map[string]int64
	// meanElems is the fallback element count for edges whose dummy
	// extent is not statically known (assumed-shape).
	meanElems float64
	// baseVec is the baseline's vectorized loop count.
	baseVec int
	// PenaltyBudget is the maximum tolerated CastPenalty, as a fraction
	// of baseline hotspot cycles (default 0.25).
	PenaltyBudget float64
	hotspotCycles float64
}

// NewFilter builds a static filter from the analyzed baseline program,
// its profiled timers, and the hotspot cycle count.
func NewFilter(base *ft.Program, timers *gptl.Timers, hotspotCycles float64, model *perfmodel.Model) *Filter {
	return NewFilterFromRegions(base, timers.Regions(), hotspotCycles, model)
}

// NewFilterFromRegions is NewFilter taking the baseline profile as a
// region list (as exposed by the tuner's Baseline).
func NewFilterFromRegions(base *ft.Program, regions []*gptl.Region, hotspotCycles float64, model ...*perfmodel.Model) *Filter {
	m := perfmodel.Default()
	if len(model) > 0 && model[0] != nil {
		m = model[0]
	}
	f := &Filter{
		base:          base,
		model:         m,
		calls:         make(map[string]int64),
		meanElems:     64,
		PenaltyBudget: 0.25,
		hotspotCycles: hotspotCycles,
	}
	for _, r := range regions {
		f.calls[r.Name] = r.Calls
	}
	an := perfmodel.Analyze(base, m)
	f.baseVec, _ = an.VectorizedCount()
	return f
}

// Evaluate statically scores an assignment without running it: it clones
// the program, rewrites declaration kinds (no wrappers — mismatches are
// the object of study), and inspects the flow graph and the
// vectorization report.
func (f *Filter) Evaluate(a transform.Assignment) (*Verdict, error) {
	variant := ft.Clone(f.base)
	if _, err := ft.Analyze(variant, ft.Options{AllowKindMismatch: true}); err != nil {
		return nil, fmt.Errorf("staticeval: %w", err)
	}
	byName := make(map[string]*ft.VarDecl)
	for _, d := range ft.RealDecls(variant) {
		byName[d.QName()] = d
	}
	for q, kind := range a {
		d, ok := byName[q]
		if !ok {
			return nil, fmt.Errorf("staticeval: unknown atom %q", q)
		}
		d.Kind = kind
	}
	info, err := ft.Analyze(variant, ft.Options{AllowKindMismatch: true})
	if err != nil {
		return nil, fmt.Errorf("staticeval: %w", err)
	}

	v := &Verdict{BaseVecLoops: f.baseVec}

	// §V cost model: penalty per mismatched edge = calls × elems × cast.
	g := transform.BuildFlowGraph(variant, info)
	castCost := f.model.OpCost(perfmodel.OpCast, 8) +
		f.model.OpCost(perfmodel.OpLoad, 8) + f.model.OpCost(perfmodel.OpStore, 8)
	for _, e := range g.MismatchedEdges() {
		v.MismatchedEdges++
		calls := f.calls[e.Callee]
		if calls == 0 {
			calls = 1
		}
		elems := float64(e.Elems)
		if elems == 0 {
			elems = f.meanElems
		}
		v.CastPenalty += float64(calls) * elems * castCost
	}

	// §V vectorization filter: compare the variant's vectorization
	// report against the baseline's.
	an := perfmodel.Analyze(variant, f.model)
	v.VecLoops, _ = an.VectorizedCount()

	if v.VecLoops < v.BaseVecLoops {
		v.Reject = true
		v.Reasons = append(v.Reasons,
			fmt.Sprintf("vectorization regressed: %d loops vs baseline %d", v.VecLoops, v.BaseVecLoops))
	}
	if f.hotspotCycles > 0 && v.CastPenalty > f.PenaltyBudget*f.hotspotCycles {
		v.Reject = true
		v.Reasons = append(v.Reasons,
			fmt.Sprintf("cast-flow penalty %.0f exceeds %.0f%% of hotspot cycles",
				v.CastPenalty, 100*f.PenaltyBudget))
	}
	return v, nil
}

func (v *Verdict) String() string {
	s := fmt.Sprintf("penalty=%.0f edges=%d vec=%d/%d", v.CastPenalty, v.MismatchedEdges, v.VecLoops, v.BaseVecLoops)
	if v.Reject {
		s += " REJECT (" + strings.Join(v.Reasons, "; ") + ")"
	}
	return s
}
