package staticeval

import (
	"strings"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/gptl"
	"repro/internal/interp"
	"repro/internal/models"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

// buildFilter profiles the MPAS-A surrogate baseline and builds a filter.
func buildFilter(t *testing.T) (*Filter, *ft.Program, []transform.Atom) {
	t.Helper()
	m := models.MPASA()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	machine := perfmodel.Default()
	in, err := interp.New(prog, interp.Config{Model: machine, TrapNonFinite: true, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	hot := map[string]bool{}
	for _, q := range m.HotspotProcs(prog) {
		hot[q] = true
	}
	hotCycles := res.Timers.TotalSelf(func(n string) bool { return hot[n] })
	f := NewFilter(prog, res.Timers, hotCycles, machine)
	return f, prog, transform.Atoms(prog, m.Hotspot)
}

func TestFilterAcceptsBaselineAndUniform(t *testing.T) {
	f, _, atoms := buildFilter(t)
	for _, tc := range []struct {
		name string
		a    transform.Assignment
	}{
		{"all-64 baseline", transform.Uniform(atoms, 8)},
		{"uniform 32", transform.Uniform(atoms, 4)},
	} {
		v, err := f.Evaluate(tc.a)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if v.Reject {
			t.Errorf("%s rejected: %s", tc.name, v)
		}
	}
}

func TestFilterRejectsFluxWrapperVariant(t *testing.T) {
	f, _, atoms := buildFilter(t)
	a := transform.Uniform(atoms, 4)
	a["atm_time_integration.flux4.ua"] = 8 // per-cell mismatch, 40k calls
	v, err := f.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Reject {
		t.Fatalf("flux-mismatch variant accepted: %s", v)
	}
	if v.CastPenalty <= 0 || v.MismatchedEdges == 0 {
		t.Errorf("penalty not computed: %s", v)
	}
	joined := strings.Join(v.Reasons, " ")
	if !strings.Contains(joined, "penalty") && !strings.Contains(joined, "vectorization") {
		t.Errorf("reasons unconvincing: %v", v.Reasons)
	}
}

func TestFilterVectorizationRegression(t *testing.T) {
	f, _, atoms := buildFilter(t)
	// Mixing kinds inside the acoustic loops (module fields 64-bit,
	// everything else 32) blocks their vectorization.
	a := transform.Uniform(atoms, 4)
	a["atm_time_integration.ru_p"] = 8
	a["atm_time_integration.rh_p"] = 8
	v, err := f.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	if v.VecLoops >= v.BaseVecLoops {
		t.Errorf("expected fewer vectorized loops: %s", v)
	}
	if !v.Reject {
		t.Errorf("vector-regressed variant accepted: %s", v)
	}
}

func TestFilterUnknownAtom(t *testing.T) {
	f, _, _ := buildFilter(t)
	if _, err := f.Evaluate(transform.Assignment{"no.such.thing": 4}); err == nil {
		t.Error("unknown atom accepted")
	}
}

func TestFilterDoesNotMutateBaseline(t *testing.T) {
	f, prog, atoms := buildFilter(t)
	before := ft.Print(prog)
	if _, err := f.Evaluate(transform.Uniform(atoms, 4)); err != nil {
		t.Fatal(err)
	}
	if ft.Print(prog) != before {
		t.Error("static evaluation mutated the baseline program")
	}
}

func TestVerdictString(t *testing.T) {
	v := &Verdict{CastPenalty: 123, MismatchedEdges: 2, VecLoops: 3, BaseVecLoops: 5,
		Reject: true, Reasons: []string{"because"}}
	s := v.String()
	for _, want := range []string{"penalty=123", "edges=2", "vec=3/5", "REJECT", "because"} {
		if !strings.Contains(s, want) {
			t.Errorf("Verdict.String() %q missing %q", s, want)
		}
	}
}

func TestNewFilterFromRegions(t *testing.T) {
	m := models.MPASA()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	regions := []*gptl.Region{{Name: "atm_time_integration.flux4", Calls: 1000}}
	f := NewFilterFromRegions(prog, regions, 1e6)
	if f.calls["atm_time_integration.flux4"] != 1000 {
		t.Error("call counts not adopted from regions")
	}
	if f.baseVec == 0 {
		t.Error("baseline vectorization not analyzed")
	}
}
