package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/models"
	"repro/internal/obs"
)

// TestNumericsDoesNotPerturbJournal is the shadow-execution acceptance
// test: a tune run with Options.Numerics on writes an evaluation
// journal BYTE-IDENTICAL to a plain run, at parallelism 1 and 8. The
// shadow lane is strictly diagnostic — it is not fingerprinted and
// must never change a primary result, a cost, or a journal byte.
func TestNumericsDoesNotPerturbJournal(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath}); err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 8} {
		numPath := filepath.Join(dir, "numerics_par"+string(rune('0'+par))+".jsonl")
		reg := obs.NewRegistry()
		if _, err, fault := runJournaled(t, Options{
			Seed: 1, JournalPath: numPath, Parallelism: par,
			Numerics: true, Metrics: reg,
		}); err != nil || fault != nil {
			t.Fatalf("par-%d numerics run: err=%v fault=%v", par, err, fault)
		}
		numBytes, err := os.ReadFile(numPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(numBytes) != string(refBytes) {
			t.Errorf("par-%d numerics journal differs from plain journal (%d vs %d bytes)",
				par, len(numBytes), len(refBytes))
		}
		snap := reg.Snapshot()
		if snap.Counters[obs.MetricNumericOps] == 0 {
			t.Errorf("par-%d run recorded no shadow-checked ops — the test is vacuous", par)
		}
	}
}

// TestNumericsSpanAttributes checks the diagnosis reaches the trace:
// with Numerics and tracing both on, every interp.run span carries the
// numeric_* attributes, and funarc's all-float32 variants surface
// catastrophic cancellation.
func TestNumericsSpanAttributes(t *testing.T) {
	tracer := obs.NewTracer("model=funarc seed=1")
	if _, err, fault := runJournaled(t, Options{
		Seed: 1, Numerics: true, Trace: tracer, Metrics: obs.NewRegistry(),
	}); err != nil || fault != nil {
		t.Fatalf("run: err=%v fault=%v", err, fault)
	}
	runs, withOps, withCatastrophic := 0, 0, 0
	for _, r := range tracer.Records() {
		if r.Name != obs.SpanInterpRun {
			continue
		}
		runs++
		if ops := r.Attr("numeric_ops"); ops != "" && ops != "0" {
			withOps++
		}
		if cat := r.Attr("numeric_catastrophic"); cat != "" && cat != "0" {
			withCatastrophic++
		}
	}
	if runs == 0 {
		t.Fatal("no interp.run spans recorded")
	}
	if withOps != runs {
		t.Errorf("%d/%d interp.run spans carry a nonzero numeric_ops attribute", withOps, runs)
	}
	if withCatastrophic == 0 {
		t.Error("no interp.run span observed catastrophic cancellation on funarc")
	}
}

// TestNumericsNotFingerprinted pins Numerics out of the resume
// fingerprint: a journal written plain must be resumable by a run with
// diagnostics on (and vice versa), exactly like Trace/Metrics.
func TestNumericsNotFingerprinted(t *testing.T) {
	m := models.Funarc()
	plain, err := New(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := New(m, Options{Seed: 1, Numerics: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() != diag.Fingerprint() {
		t.Errorf("Numerics changed the journal fingerprint:\n  plain: %s\n  diag:  %s",
			plain.Fingerprint(), diag.Fingerprint())
	}
	if plain.Fingerprint() == "" {
		t.Error("fingerprint is empty")
	}
}
