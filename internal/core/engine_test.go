package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/interp"
	"repro/internal/models"
)

// TestEngineJournalByteIdentity is the end-to-end acceptance test for
// the engine contract: a full tune journaled under the compiled VM must
// be byte-identical to one journaled under the reference tree-walker,
// serial and parallel alike. This is why Options.Engine is not part of
// the journal fingerprint.
func TestEngineJournalByteIdentity(t *testing.T) {
	dir := t.TempDir()
	for _, par := range []int{1, 8} {
		runOne := func(eng interp.Engine) []byte {
			jp := filepath.Join(dir, fmt.Sprintf("j-%s-par%d.jsonl", eng, par))
			tn, err := New(models.Funarc(), Options{
				Seed: 1, Parallelism: par, JournalPath: jp, Engine: eng,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tn.Run(nil); err != nil {
				t.Fatalf("tune (engine=%s par=%d): %v", eng, par, err)
			}
			b, err := os.ReadFile(jp)
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				t.Fatalf("empty journal (engine=%s par=%d)", eng, par)
			}
			return b
		}
		ast := runOne(interp.EngineAST)
		vm := runOne(interp.EngineVM)
		if !bytes.Equal(ast, vm) {
			t.Errorf("par=%d: journals diverged between engines (%d vs %d bytes)", par, len(ast), len(vm))
		}
	}
}
