package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/journal"
	"repro/internal/models"
	"repro/internal/resilience"
	"repro/internal/search"
	"repro/internal/transform"
)

// TestFlakyRetryJournalByteIdentical is the resilience acceptance test:
// a tune whose evaluations transiently die 30% of the time, run under
// -retries, leaves an evaluation journal BYTE-IDENTICAL to a fault-free
// run's — the retries absorb the infrastructure noise without changing
// a single journaled value, index, or byte.
func TestFlakyRetryJournalByteIdentical(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	flakyPath := filepath.Join(dir, "flaky.jsonl")
	res, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: flakyPath,
		Retries: 8, RetryBackoff: 1, // ~ns-scale sleeps
		WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
			return &search.FaultInjector{Inner: inner, Mode: search.FaultFlaky, Rate: 0.3, Seed: 7}
		},
	})
	if err != nil || fault != nil {
		t.Fatalf("flaky run: err=%v fault=%v", err, fault)
	}
	if res.Resilience == nil {
		t.Fatal("supervised run reported no resilience stats")
	}
	if res.Resilience.Quarantined != 0 {
		t.Fatalf("flaky run quarantined %d assignment(s); pick a different injector seed", res.Resilience.Quarantined)
	}
	if res.Resilience.Retried == 0 {
		t.Fatal("no retries happened — the test is vacuous")
	}
	flakyBytes, err := os.ReadFile(flakyPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(flakyBytes) != string(refBytes) {
		t.Errorf("flaky+retries journal differs from fault-free journal (%d vs %d bytes)",
			len(flakyBytes), len(refBytes))
	}
	if fmt.Sprint(res.Outcome.Minimal) != fmt.Sprint(ref.Outcome.Minimal) {
		t.Errorf("minimal %v, want %v", res.Outcome.Minimal, ref.Outcome.Minimal)
	}
	// The retry noise lives in the events sidecar, not the journal.
	if _, err := os.Stat(journal.EventsPath(flakyPath)); err != nil {
		t.Errorf("supervised run left no events sidecar: %v", err)
	}
	if _, err := os.Stat(journal.EventsPath(refPath)); !os.IsNotExist(err) {
		t.Errorf("unsupervised run created an events sidecar")
	}
}

// TestSupervisedNoFaultRunIsFaithful: with supervision on but no faults,
// every evaluation takes exactly one attempt (variant outcomes — funarc
// produces fails and errors — are never retried) and the journal matches
// the unsupervised reference byte for byte.
func TestSupervisedNoFaultRunIsFaithful(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath}); err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, _ := os.ReadFile(refPath)

	supPath := filepath.Join(dir, "sup.jsonl")
	res, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: supPath, Retries: 3, RetryBackoff: 1})
	if err != nil || fault != nil {
		t.Fatalf("supervised run: err=%v fault=%v", err, fault)
	}
	st := res.Resilience
	if st == nil {
		t.Fatal("no resilience stats")
	}
	if st.Attempts != st.Evaluations || st.Retried != 0 || st.Quarantined != 0 {
		t.Errorf("stats = %+v: fault-free supervised run must spend exactly one attempt per evaluation", st)
	}
	if total, pass, _, _, _ := res.Outcome.Log.Counts(); total == pass {
		t.Error("funarc search produced no failing variants; the no-retry assertion is vacuous")
	}
	supBytes, _ := os.ReadFile(supPath)
	if string(supBytes) != string(refBytes) {
		t.Error("supervision changed the journal of a fault-free run")
	}
}

// poisonedKey picks the canonical key of the first fail-status variant
// of a reference run — an assignment the search certainly proposes.
func poisonedKey(t *testing.T, ref *Result) string {
	t.Helper()
	for _, ev := range ref.Outcome.Log.Evals {
		if ev.Status == search.StatusFail && ev.Assignment != nil {
			return ev.Assignment.Key()
		}
	}
	t.Fatal("reference run has no fail-status variant to poison")
	return ""
}

// TestQuarantineCompletesSearch: a persistently crashing assignment is
// quarantined mid-tune; the search completes, records the poisoned
// variant as infra (excluded from Table II counts), and reports it.
func TestQuarantineCompletesSearch(t *testing.T) {
	dir := t.TempDir()
	ref, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: filepath.Join(dir, "ref.jsonl")})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	poison := poisonedKey(t, ref)

	path := filepath.Join(dir, "q.jsonl")
	res, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, Retries: 2, RetryBackoff: 1,
		WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
			return &search.FaultInjector{Inner: inner, Mode: search.FaultCrashKey, CrashKey: poison}
		},
	})
	if err != nil || fault != nil {
		t.Fatalf("quarantine run: err=%v fault=%v", err, fault)
	}
	if res.Outcome.Log.InfraCount() != 1 {
		t.Fatalf("InfraCount = %d, want 1", res.Outcome.Log.InfraCount())
	}
	if res.Resilience.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", res.Resilience.Quarantined)
	}
	// The poisoned variant failed in the reference, so its outcome never
	// steered the search: totals differ by exactly the excluded record.
	refTotal, _, _, _, _ := ref.Outcome.Log.Counts()
	total, _, _, _, _ := res.Outcome.Log.Counts()
	if total != refTotal-1 {
		t.Errorf("Counts total = %d, want %d", total, refTotal-1)
	}
	if fmt.Sprint(res.Outcome.Minimal) != fmt.Sprint(ref.Outcome.Minimal) {
		t.Errorf("minimal %v, want %v", res.Outcome.Minimal, ref.Outcome.Minimal)
	}
	if !strings.Contains(res.Render(), "infrastructure failures: 1") {
		t.Error("report does not surface the infra record")
	}
	// The quarantine survived to the events sidecar.
	elog, err := journal.OpenEvents(journal.EventsPath(path), journal.Header{Fingerprint: mustFingerprint(t, Options{Seed: 1})})
	if err != nil {
		t.Fatal(err)
	}
	defer elog.Close()
	if q := elog.QuarantinedKeys(); len(q) != 1 || q[poison] == "" {
		t.Errorf("sidecar quarantine keys = %v, want [%s]", q, poison)
	}
}

func mustFingerprint(t *testing.T, opts Options) string {
	t.Helper()
	tn, err := New(models.Funarc(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return tn.Fingerprint()
}

// recordingWrap wraps an evaluator, recording every assignment key that
// reaches it. Safe for concurrent use.
type recordingWrap struct {
	inner search.Evaluator
	mu    sync.Mutex
	keys  map[string]int
}

func (r *recordingWrap) Evaluate(a transform.Assignment) *search.Evaluation {
	r.mu.Lock()
	if r.keys == nil {
		r.keys = make(map[string]int)
	}
	r.keys[a.Key()]++
	r.mu.Unlock()
	return r.inner.Evaluate(a)
}

func (r *recordingWrap) count(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.keys[key]
}

// TestBreakerTripThenResume is the graceful-degradation acceptance test:
// a FailFast tune trips on a poisoned assignment, returns the partial
// result alongside the typed abort error, and persists the quarantine —
// so a -resume run short-circuits the poison, never re-crashes, and
// finishes with a journal byte-identical to a run that quarantined the
// poison inline from the start.
func TestBreakerTripThenResume(t *testing.T) {
	dir := t.TempDir()
	ref, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: filepath.Join(dir, "ref.jsonl")})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	poison := poisonedKey(t, ref)
	crashInjector := func(inner search.Evaluator) search.Evaluator {
		return &search.FaultInjector{Inner: inner, Mode: search.FaultCrashKey, CrashKey: poison}
	}

	// One-shot reference for the final journal: same poison, quarantined
	// inline (no breaker), search runs to completion.
	onePath := filepath.Join(dir, "oneshot.jsonl")
	if _, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: onePath, Retries: 1, RetryBackoff: 1,
		WrapEvaluator: crashInjector,
	}); err != nil || fault != nil {
		t.Fatalf("one-shot run: err=%v fault=%v", err, fault)
	}
	oneBytes, _ := os.ReadFile(onePath)

	// FailFast run: trips at the poisoned evaluation.
	path := filepath.Join(dir, "trip.jsonl")
	res, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, FailFast: true, RetryBackoff: 1,
		Parallelism:   2,
		WrapEvaluator: crashInjector,
	})
	if fault != nil {
		t.Fatalf("breaker trip leaked an injected-fault panic: %v", fault)
	}
	var abort *resilience.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want *resilience.AbortError", err)
	}
	if abort.Reason != resilience.AbortBreaker {
		t.Fatalf("abort reason = %v, want breaker", abort.Reason)
	}
	if res == nil || res.Aborted == nil {
		t.Fatal("no partial result returned with the abort")
	}
	if res.Outcome == nil || res.Outcome.Converged {
		t.Fatal("partial outcome missing or claims convergence")
	}
	if !strings.Contains(res.Render(), "PARTIAL RESULT") {
		t.Error("partial report does not announce the abort")
	}
	// The trip must not write a Done checkpoint.
	if ck, ok, err := journal.LoadCheckpoint(journal.CheckpointPath(path)); err != nil {
		t.Fatal(err)
	} else if ok && ck.Done {
		t.Error("aborted run wrote a Done checkpoint")
	}

	// Resume with retries instead of failfast: the persisted quarantine
	// short-circuits the poison — the injector (and tuner) must never
	// see that key again — and the search completes.
	var rec *recordingWrap
	res2, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, Resume: true, Retries: 1, RetryBackoff: 1,
		WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
			rec = &recordingWrap{inner: crashInjector(inner)}
			return rec
		},
	})
	if err != nil || fault != nil {
		t.Fatalf("resume after trip: err=%v fault=%v", err, fault)
	}
	if rec.count(poison) != 0 {
		t.Errorf("poisoned key reached the evaluator %d times on resume; the persisted quarantine must short-circuit it", rec.count(poison))
	}
	if res2.Outcome.Log.InfraCount() != 1 {
		t.Errorf("resumed InfraCount = %d, want 1", res2.Outcome.Log.InfraCount())
	}
	gotBytes, _ := os.ReadFile(path)
	if string(gotBytes) != string(oneBytes) {
		t.Errorf("trip+resume journal differs from inline-quarantine journal (%d vs %d bytes)",
			len(gotBytes), len(oneBytes))
	}
	if fmt.Sprint(res2.Outcome.Minimal) != fmt.Sprint(ref.Outcome.Minimal) {
		t.Errorf("minimal %v, want %v", res2.Outcome.Minimal, ref.Outcome.Minimal)
	}
}

// gatedCrash panics persistently on one key — but only after at least
// one other evaluation has completed, so a concurrent sibling's result
// is always there to salvage when the breaker trips.
type gatedCrash struct {
	inner   search.Evaluator
	crash   string
	sibling chan struct{}
	once    sync.Once
}

func (g *gatedCrash) Evaluate(a transform.Assignment) *search.Evaluation {
	if a.Key() == g.crash {
		<-g.sibling
		panic(fmt.Sprintf("injected: persistent crash on %q", g.crash))
	}
	ev := g.inner.Evaluate(a)
	g.once.Do(func() { close(g.sibling) })
	return ev
}

// TestSalvagedSiblingsSurviveTrip: under parallel evaluation a breaker
// trip salvages completed sibling evaluations to the events sidecar, and
// the resumed run replays them without re-evaluating.
func TestSalvagedSiblingsSurviveTrip(t *testing.T) {
	dir := t.TempDir()
	tn, err := New(models.Funarc(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Poison the all-32 variant: slot 0 of the opening batch. The crash is
	// gated on its all-64 sibling's completion, making "the completed
	// sibling is salvaged" deterministic instead of a scheduler race.
	poison := transform.Uniform(tn.Atoms(), 4).Key()
	crashInjector := func(inner search.Evaluator) search.Evaluator {
		return &search.FaultInjector{Inner: inner, Mode: search.FaultCrashKey, CrashKey: poison}
	}

	path := filepath.Join(dir, "salvage.jsonl")
	res, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, FailFast: true, RetryBackoff: 1, Parallelism: 2,
		WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
			return &gatedCrash{inner: inner, crash: poison, sibling: make(chan struct{})}
		},
	})
	if fault != nil {
		t.Fatal("trip leaked a panic")
	}
	var abort *resilience.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want abort", err)
	}
	if len(res.Outcome.Log.Evals) != 0 {
		t.Fatalf("trip at slot 0 journaled %d evals", len(res.Outcome.Log.Evals))
	}
	elog, err := journal.OpenEvents(journal.EventsPath(path), journal.Header{Fingerprint: mustFingerprint(t, Options{Seed: 1})})
	if err != nil {
		t.Fatal(err)
	}
	salvagedRecs := elog.SalvagedRecords()
	elog.Close()
	if len(salvagedRecs) != 1 {
		t.Fatalf("sidecar holds %d salvage records, want 1 (the all-64 sibling)", len(salvagedRecs))
	}

	var rec *recordingWrap
	res2, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, Resume: true, Retries: 1, RetryBackoff: 1,
		WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
			rec = &recordingWrap{inner: crashInjector(inner)}
			return rec
		},
	})
	if err != nil || fault != nil {
		t.Fatalf("resume: err=%v fault=%v", err, fault)
	}
	if res2.Salvaged != 1 {
		t.Errorf("Resumed run reports %d salvaged evals, want 1", res2.Salvaged)
	}
	if rec.count(salvagedRecs[0].AKey) != 0 {
		t.Error("salvaged evaluation was re-evaluated on resume")
	}
	if rec.count(poison) != 0 {
		t.Error("poisoned key reached the evaluator on resume")
	}
	if !strings.Contains(res2.Render(), "salvaged: 1") {
		t.Error("report does not surface the salvage")
	}
}

// TestResilienceOptionsNotFingerprinted: like parallelism, retry policy
// does not shape the evaluation stream, so journals interoperate across
// policies.
func TestResilienceOptionsNotFingerprinted(t *testing.T) {
	base := mustFingerprint(t, Options{Seed: 1})
	if mustFingerprint(t, Options{Seed: 1, Retries: 5, Breaker: 3, FailFast: true, MaxQuarantined: 9, RetryBackoff: 12345}) != base {
		t.Error("resilience options changed the fingerprint; journals would be rejected across retry policies")
	}
}
