package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ledger"
	"repro/internal/models"
	"repro/internal/search"
)

// TestDecisionLogKillResumeByteIdentical is the acceptance test for the
// decision telemetry stream's determinism contract (see
// search/decision.go): the stream must be byte-identical at every
// parallelism level, and a tune killed after ANY number of evaluations
// and resumed with -resume must leave a decision log byte-identical to
// an uninterrupted run's — the resumed search replays the journaled
// proposals from round 1 and rewrites the recreated stream in full.
func TestDecisionLogKillResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	refJournal := filepath.Join(dir, "ref.jsonl")
	refDecisions := filepath.Join(dir, "ref.decisions")
	res, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refJournal, DecisionPath: refDecisions})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refDecisions)
	if err != nil {
		t.Fatal(err)
	}
	if len(refBytes) == 0 {
		t.Fatal("reference decision log is empty")
	}
	total := len(res.Outcome.Log.Evals)

	// Parallelism invariance: the stream derives only from the
	// deterministic evaluation log, which is identical at any -par.
	parJournal := filepath.Join(dir, "par8.jsonl")
	parDecisions := filepath.Join(dir, "par8.decisions")
	if _, err, fault := runJournaled(t, Options{Seed: 1, Parallelism: 8, JournalPath: parJournal, DecisionPath: parDecisions}); err != nil || fault != nil {
		t.Fatalf("par=8 run: err=%v fault=%v", err, fault)
	}
	if got, _ := os.ReadFile(parDecisions); string(got) != string(refBytes) {
		t.Errorf("par=8 decision log differs from par=1 (%d vs %d bytes)", len(got), len(refBytes))
	}

	for _, par := range []int{1, 8} {
		for _, kill := range []int{0, 1, total / 2, total - 1} {
			name := fmt.Sprintf("p%dk%d", par, kill)
			journalPath := filepath.Join(dir, name+".jsonl")
			decisionPath := filepath.Join(dir, name+".decisions")
			_, err, fault := runJournaled(t, Options{
				Seed: 1, Parallelism: par,
				JournalPath: journalPath, DecisionPath: decisionPath,
				WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
					return &search.FaultInjector{Inner: inner, Limit: int64(kill)}
				},
			})
			if err != nil {
				t.Fatalf("par=%d kill=%d: unexpected error %v", par, kill, err)
			}
			if fault == nil {
				t.Fatalf("par=%d kill=%d: fault did not fire", par, kill)
			}

			if _, err, fault := runJournaled(t, Options{
				Seed: 1, Parallelism: par, Resume: true,
				JournalPath: journalPath, DecisionPath: decisionPath,
			}); err != nil || fault != nil {
				t.Fatalf("par=%d kill=%d: resume failed: err=%v fault=%v", par, kill, err, fault)
			}
			got, err := os.ReadFile(decisionPath)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(refBytes) {
				t.Errorf("par=%d kill=%d: resumed decision log differs from uninterrupted run's (%d vs %d bytes)",
					par, kill, len(got), len(refBytes))
			}
		}
	}
}

// TestDecisionsDoNotPerturbJournal: streaming decision telemetry must
// not change a single journal byte — the decision sidecar is derived
// state, the journal is ground truth.
func TestDecisionsDoNotPerturbJournal(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: plain}); err != nil || fault != nil {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	withDec := filepath.Join(dir, "dec.jsonl")
	if _, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: withDec, DecisionPath: filepath.Join(dir, "dec.decisions"),
	}); err != nil || fault != nil {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	a, _ := os.ReadFile(plain)
	b, _ := os.ReadFile(withDec)
	if string(a) != string(b) {
		t.Errorf("enabling decision telemetry changed journal bytes (%d vs %d)", len(a), len(b))
	}
}

// TestLedgerManifestArchived: a tune with LedgerDir set archives a
// loadable, self-consistent manifest whose decision digest matches the
// decision file actually on disk.
func TestLedgerManifestArchived(t *testing.T) {
	dir := t.TempDir()
	ledDir := filepath.Join(dir, "ledger")
	decisionPath := filepath.Join(dir, "j.jsonl.decisions")
	tn, err := New(models.Funarc(), Options{
		Seed:         1,
		JournalPath:  filepath.Join(dir, "j.jsonl"),
		DecisionPath: decisionPath,
		LedgerDir:    ledDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	led, err := ledger.Open(ledDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := led.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger lists %d runs, want 1", len(entries))
	}
	m, err := led.Get(entries[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if m.Model != "funarc" || m.Outcome != "completed" || !m.Converged {
		t.Errorf("manifest model/outcome/converged = %s/%s/%v", m.Model, m.Outcome, m.Converged)
	}
	if m.Evaluations != len(res.Outcome.Log.Evals) {
		t.Errorf("manifest evaluations %d, want %d", m.Evaluations, len(res.Outcome.Log.Evals))
	}
	if m.Fingerprint != tn.Fingerprint() {
		t.Error("manifest fingerprint differs from the tuner's")
	}
	if id, err := m.ComputeID(); err != nil || id != m.ID {
		t.Errorf("manifest is not content-addressed: stored %s, recomputed %s (err=%v)", m.ID, id, err)
	}

	// The archived digest must be the digest of the bytes on disk.
	raw, err := os.ReadFile(decisionPath)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); m.DecisionDigest != got {
		t.Errorf("manifest decision digest %s, file digest %s", m.DecisionDigest, got)
	}
	if m.DecisionEvents == 0 {
		t.Error("manifest records zero decision events")
	}

	// Prefix resolution and a second archived run.
	if _, err := led.Get(entries[0].ID[:10]); err != nil {
		t.Errorf("prefix lookup failed: %v", err)
	}
	tn2, err := New(models.Funarc(), Options{Seed: 1, MaxEvaluations: 3, LedgerDir: ledDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.Run(nil); err != nil {
		t.Fatal(err)
	}
	entries, err = led.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("ledger lists %d runs after second tune, want 2", len(entries))
	}
	if entries[0].ID == entries[1].ID {
		t.Error("two different runs share a content address")
	}
}
