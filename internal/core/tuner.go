// Package core is the public face of the PROSE-Go precision tuner: it
// wires the paper's tuning cycle together (Fig. 1 / artifact tasks
// T0-T4) for a given model:
//
//	T0  parse the model, enumerate search atoms, profile the baseline;
//	T1  the delta-debugging search proposes precision assignments;
//	T2  the transformer generates each mixed-precision variant
//	    (kind rewriting + wrapper insertion);
//	T3  the interpreter + machine model evaluate the variant's
//	    performance (simulated cycles, GPTL regions) and correctness
//	    (§IV-A metrics vs. the baseline);
//	T4  outcomes feed back into the search until a 1-minimal variant
//	    is found or the budget expires.
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	ft "repro/internal/fortran"
	"repro/internal/gptl"
	"repro/internal/interp"
	"repro/internal/journal"
	"repro/internal/ledger"
	"repro/internal/models"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/resilience"
	"repro/internal/search"
	"repro/internal/transform"
)

// Options configures a tuning run.
type Options struct {
	// WholeModel guides the search by whole-model time instead of
	// hotspot CPU time (the §IV-C / Fig. 7 experiment).
	WholeModel bool
	// MaxEvaluations overrides the model's evaluation budget (0 keeps
	// the model default; negative means unlimited).
	MaxEvaluations int
	// MinSpeedup is the performance criterion (default 1.0: variants
	// slower than the baseline are rejected, as in the paper).
	MinSpeedup float64
	// Seed drives the Eq. (1) runtime-noise model. Each variant's noise
	// stream is derived from Seed and the variant's canonical key, so
	// results are independent of evaluation order and parallelism.
	Seed int64
	// Parallelism bounds concurrent variant evaluations (default 1).
	Parallelism int
	// Machine overrides the default machine model.
	Machine *perfmodel.Model
	// Progress, if non-nil, receives one call per distinct variant.
	// Evaluations replayed from a resumed journal are not re-run and do
	// not reach Progress.
	Progress func(ev *search.Evaluation)

	// JournalPath, if non-empty, makes the search crash-safe: every
	// distinct variant evaluation is appended to an append-only JSONL
	// journal at this path and fsync'd before the search proceeds, and
	// an atomic checkpoint of search progress is kept at
	// JournalPath+".ckpt". A run killed at any point (the paper's
	// 12-hour job limit killed the MOM6 search and lost everything)
	// leaves a journal from which Resume continues without re-running
	// any evaluated variant.
	JournalPath string
	// Resume warm-starts from an existing journal at JournalPath: the
	// search replays the journaled evaluations to the point the
	// previous run died, then continues. The journal's baseline
	// fingerprint (program source, machine model, seed, search options)
	// must match this run's, or it is rejected as stale rather than
	// silently reused. Parallelism is deliberately not fingerprinted:
	// evaluation logs are identical at every parallelism level.
	Resume bool

	// WrapEvaluator, if non-nil, wraps the tuner's variant evaluator
	// before the search runs — the instrumentation seam used by the
	// crash-safety fault-injection tests, and available for caching or
	// screening layers.
	WrapEvaluator func(search.Evaluator) search.Evaluator

	// Retries enables the resilience supervisor and bounds retries of
	// transient infrastructure faults (worker panics) per evaluation.
	// Variant outcomes — fail/timeout/error evaluations *returned* by
	// the evaluator — are deterministic properties of the assignment and
	// are never retried, so Table II statistics are unaffected. Like
	// Parallelism, the resilience knobs are not fingerprinted: they do
	// not shape the evaluation stream, so a journal recorded under one
	// retry policy resumes correctly under any other.
	Retries int
	// FailFast trips the circuit breaker on the first hard
	// infrastructure failure (equivalent to Breaker=1).
	FailFast bool
	// Breaker trips the circuit breaker after this many consecutive
	// hard infrastructure failures, failing fast with a partial report
	// (0 disables unless FailFast is set). Setting it enables the
	// supervisor even with Retries=0.
	Breaker int
	// MaxQuarantined aborts the search once more than this many
	// distinct assignments are quarantined (0 = unlimited).
	MaxQuarantined int
	// RetryBackoff is the base retry delay (0 = the supervisor default;
	// tests set ~1ns to avoid real sleeps). Jitter is seeded per
	// assignment, so retried runs stay deterministic.
	RetryBackoff time.Duration
	// RetriesByClass overrides Retries per fault kind (see
	// resilience.FaultKindOf and resilience.DefaultRetryBudgets): a
	// scheduler kill usually deserves more retries than an OOM.
	RetriesByClass map[string]int
	// Watchdog bounds each evaluation attempt's wall-clock time; a hung
	// worker is abandoned and treated as a transient infrastructure
	// fault. Setting it enables the supervisor.
	Watchdog time.Duration
	// HalfOpen makes a tripped circuit breaker probe one evaluation
	// (after a cooldown) instead of aborting outright; the search
	// resumes if the probe succeeds.
	HalfOpen bool
	// DrainGrace is how long in-flight evaluations may keep running
	// after the run's context is cancelled before they are hard-stopped
	// mid-flight (interpreter unwinds with a cancellation fault). 0
	// lets in-flight evaluations drain to completion; the soft stop —
	// no *new* evaluation starts — always applies immediately.
	DrainGrace time.Duration

	// Trace, if non-nil, collects a hierarchical span trace of the run
	// (tune → search.round → batch → eval → interp.run, plus retry and
	// journal.append spans). Metrics, if non-nil, collects counters,
	// gauges, and histograms; the final snapshot lands in
	// Result.Metrics. Like Parallelism and the resilience knobs, neither
	// is fingerprinted, and neither may perturb the evaluation stream or
	// the journal bytes: they are strictly observational (test-enforced
	// by TestTracingDoesNotPerturbJournal).
	Trace   *obs.Tracer
	Metrics *obs.Registry

	// Numerics attaches a shadow-execution recorder to every
	// interpreter run: each evaluation's eval span gains numeric_*
	// attributes (FP error, cancellations, non-finite provenance) and
	// Metrics gains the numeric_* counters. Like Trace/Metrics it is
	// strictly observational — not fingerprinted, and it may not
	// perturb the evaluation stream or the journal bytes
	// (test-enforced by TestNumericsDoesNotPerturbJournal).
	Numerics bool

	// Engine selects the interpreter execution engine for every run the
	// tuner makes (baseline, uniform-32 build, variants). The zero value
	// (interp.EngineVM) is the compiled engine; interp.EngineAST keeps
	// the reference tree-walker. Deliberately not fingerprinted: the two
	// engines are bit-for-bit equivalent by contract, so a journal
	// recorded under one engine resumes byte-identically under the other
	// (test-enforced by TestEngineJournalByteIdentity).
	Engine interp.Engine

	// DecisionPath, if non-empty, streams the search's per-round decision
	// telemetry (candidate lifecycle, funnel tallies, best-so-far,
	// frontier) to an append-only JSONL sidecar at this path — see
	// internal/ledger. Like Trace/Metrics it is strictly observational:
	// not fingerprinted, journal bytes unchanged. The file is recreated
	// on every run, Resume included: the stream derives only from the
	// deterministic evaluation log, so a resumed run rewrites it
	// byte-identically to an uninterrupted run's (test-enforced by
	// TestDecisionLogKillResumeByteIdentical).
	DecisionPath string
	// LedgerDir, if non-empty, archives the run into the content-
	// addressed run ledger at this directory when Run returns: a
	// manifest carrying the fingerprint, machine, engine, result
	// summary, final metrics snapshot (with histogram quantiles), fleet
	// stats, and the decision-log digest. See internal/ledger and
	// `prose runs` / `prose compare`.
	LedgerDir string

	// Fleet, if non-nil, shards every variant evaluation across this
	// coordinator's worker subprocesses instead of running it in-process.
	// The tuner starts the coordinator when Run begins (handing it the
	// in-process evaluator as the degrade fallback and the run
	// fingerprint for the worker handshake) and closes it before Run
	// returns. Worker deaths, missed heartbeats, and expired leases
	// surface as transient infrastructure faults to the resilience
	// supervisor — a fleet run always supervises, and when no retry knob
	// is set it gets DefaultFleetRetries with the per-kind defaults — so
	// a lease reassignment is just a supervised retry. Like Parallelism,
	// the fleet is not fingerprinted: workers reproduce the
	// coordinator's evaluations bit for bit, so the journal is
	// byte-identical at any pool size, worker crashes included
	// (test-enforced by TestFleetJournalByteIdentity). ProcVariants
	// (Fig. 6) stays empty in fleet mode: per-procedure points are
	// accumulated inside each worker's tuner and are not shipped back.
	Fleet *fleet.Coordinator
}

// DefaultFleetRetries is the retry base a fleet run uses when no
// explicit retry knob is set: killed workers are routine, so the leases
// they held must be reassigned a few times before anyone concludes an
// assignment is poisoned.
const DefaultFleetRetries = 3

// supervising reports whether any resilience knob enables the
// supervisor.
func (o Options) supervising() bool {
	return o.Retries > 0 || o.FailFast || o.Breaker > 0 || o.MaxQuarantined > 0 ||
		o.Watchdog > 0 || len(o.RetriesByClass) > 0 || o.Fleet != nil
}

// Baseline summarizes the instrumented baseline run (Table I data).
type Baseline struct {
	TotalCycles   float64
	HotspotCycles float64
	HotspotShare  float64 // fraction of CPU time in the hotspot
	AtomCount     int
	Threshold     float64
	Regions       []*gptl.Region
}

// ProcPoint is one unique per-procedure variant measurement (Fig. 6):
// the average CPU time per call of a hotspot procedure under a unique
// precision assignment of that procedure's own variables.
type ProcPoint struct {
	Key        string  // canonical sub-assignment (lowered atoms of the proc)
	Lowered    int     // this procedure's atoms at 32-bit
	PerCall    float64 // cycles per call (self + its wrappers)
	Speedup    float64 // baseline per-call / variant per-call
	FromIndex  int     // evaluation that first produced this point
	CallsSeen  int64
	FailStatus search.Status // status of the producing variant
}

// Result is a completed tuning run.
type Result struct {
	Model    *models.Model
	Options  Options
	Baseline *Baseline
	Outcome  *search.Outcome
	// ProcVariants maps hotspot procedure qualified names to their
	// unique per-procedure variants (Fig. 6 series), each slice sorted
	// by FromIndex so results are independent of evaluation order.
	ProcVariants map[string][]ProcPoint
	// Criteria used by the search.
	Criteria search.Criteria
	// Resumed is the number of evaluations replayed from the journal
	// instead of re-run (0 unless Options.Resume found prior work).
	Resumed int
	// Salvaged is the number of evaluations recovered from the events
	// sidecar of an aborted prior run and replayed without re-running.
	Salvaged int
	// Resilience snapshots the supervisor counters (nil when the run
	// was not supervised).
	Resilience *resilience.Stats
	// Aborted is set when the supervisor terminated the search early
	// (circuit breaker / quarantine budget); the Result then holds the
	// partial work completed before the abort, and Run returns the same
	// value as its error.
	Aborted *resilience.AbortError
	// Cancelled is set when the run's context was cancelled — a signal
	// or an expired wall-clock budget stopped the search in an orderly
	// fashion. The Result holds the partial work completed (and
	// journaled) before the stop, and Run returns the same value as its
	// error; with a journal, a -resume run completes the search and
	// produces a byte-identical journal.
	Cancelled *search.Cancelled
	// Metrics is the final snapshot of Options.Metrics (nil when the run
	// collected no metrics); Render embeds it in the report.
	Metrics *obs.Snapshot
	// Fleet snapshots the worker-fleet counters (nil when the run did
	// not shard evaluations across worker subprocesses).
	Fleet *fleet.Stats
}

// Tuner runs the full tuning cycle for one model.
type Tuner struct {
	model   *models.Model
	machine *perfmodel.Model
	opts    Options

	prog          *ft.Program
	atoms         []transform.Atom
	hotspotProcs  map[string]bool
	entryProcs    map[string]bool // hotspot procs called from outside
	baseOut       []float64
	baseline      *Baseline
	baseProcPC    map[string]float64 // baseline per-call by proc
	baseProcCalls map[string]int64
	baseTimeEq1   float64 // Eq. (1) numerator (median of n noisy samples)

	log        *search.Log
	mu         sync.Mutex // guards procPoints, evalSeq, Progress calls
	evalSeq    int
	procPoints map[string]map[string]*ProcPoint
	procAtoms  map[string][]string // proc -> its atom qnames

	// runCtx is the hard-cancellation context of the current Run: once
	// it is done, in-flight interpreter runs unwind with FailCancelled.
	// Written once before the search spawns workers (the go statement
	// establishes the happens-before), nil when Run was given no context.
	runCtx context.Context
}

// New prepares a tuner: parses the model, enumerates atoms, runs and
// profiles the baseline, and determines the error threshold.
func New(m *models.Model, opts Options) (*Tuner, error) {
	if opts.Machine == nil {
		opts.Machine = perfmodel.Default()
	}
	if opts.MinSpeedup == 0 {
		opts.MinSpeedup = 1.0
	}
	t := &Tuner{
		model:      m,
		machine:    opts.Machine,
		opts:       opts,
		procPoints: make(map[string]map[string]*ProcPoint),
	}
	prog, err := m.Parse()
	if err != nil {
		return nil, err
	}
	t.prog = prog
	t.atoms = transform.Atoms(prog, m.Hotspot)
	if len(t.atoms) == 0 {
		return nil, fmt.Errorf("core: model %s has no tunable atoms in module %q", m.Name, m.Hotspot)
	}

	t.hotspotProcs = make(map[string]bool)
	for _, q := range m.HotspotProcs(prog) {
		t.hotspotProcs[q] = true
	}
	t.entryProcs = entryProcs(prog, m.Hotspot)

	// Atom list per procedure, for the Fig. 6 sub-assignment keys.
	t.procAtoms = make(map[string][]string)
	for _, a := range t.atoms {
		var owner string
		if a.Decl.Proc != nil {
			owner = a.Decl.Proc.QName()
		} else {
			// Module-level variables influence every procedure that
			// could touch them; attribute them to the module pseudo-proc.
			owner = m.Hotspot + ".<module>"
		}
		t.procAtoms[owner] = append(t.procAtoms[owner], a.QName)
	}

	if err := t.runBaseline(); err != nil {
		return nil, err
	}
	t.baseTimeEq1 = t.noiseFor("baseline").MedianOfN(
		t.measuredTime(t.baseline.HotspotCycles, t.baseline.TotalCycles), m.NRuns)
	return t, nil
}

// noiseFor derives a deterministic runtime-noise stream for one variant
// from the tuner seed and the variant's canonical key, making measured
// speedups independent of evaluation order and parallelism.
func (t *Tuner) noiseFor(key string) *perfmodel.Noise {
	h := fnv.New64a()
	h.Write([]byte(key))
	return perfmodel.NewNoise(t.model.NoiseRel, t.opts.Seed^int64(h.Sum64()))
}

// Atoms returns the search atoms (hotspot real declarations).
func (t *Tuner) Atoms() []transform.Atom { return t.atoms }

// BaselineInfo returns the baseline profile.
func (t *Tuner) BaselineInfo() *Baseline { return t.baseline }

// Program returns the analyzed baseline program.
func (t *Tuner) Program() *ft.Program { return t.prog }

// entryProcs finds hotspot procedures invoked from outside the hotspot
// module in the baseline: wrappers of these procs marshal data across
// the hotspot boundary, and their cost is excluded from hotspot CPU time
// (the paper's GPTL timers sit inside the original routines).
func entryProcs(prog *ft.Program, hotspot string) map[string]bool {
	out := make(map[string]bool)
	info := ft.MustAnalyze(prog, ft.Options{})
	for _, cs := range info.CallSites {
		if cs.Callee.Module == nil || cs.Callee.Module.Name != hotspot {
			continue
		}
		callerMod := ""
		if cs.Caller != nil && cs.Caller.Module != nil {
			callerMod = cs.Caller.Module.Name
		}
		if callerMod != hotspot {
			out[cs.Callee.QName()] = true
		}
	}
	return out
}

func (t *Tuner) runBaseline() error {
	in, err := interp.New(t.prog, interp.Config{
		Model:         t.machine,
		TrapNonFinite: true,
		Profile:       true,
		Engine:        t.opts.Engine,
	})
	if err != nil {
		return err
	}
	res, err := in.Run()
	if err != nil {
		return fmt.Errorf("core: %s baseline run failed: %w", t.model.Name, err)
	}
	out, err := t.model.Extract(in)
	if err != nil {
		return err
	}
	t.baseOut = out

	hotspot := t.hotspotTime(res, nil)
	t.baseline = &Baseline{
		TotalCycles:   res.Cycles,
		HotspotCycles: hotspot,
		HotspotShare:  hotspot / res.Cycles,
		AtomCount:     len(t.atoms),
		Regions:       res.Timers.Regions(),
	}
	t.baseProcPC = make(map[string]float64)
	t.baseProcCalls = make(map[string]int64)
	for q := range t.hotspotProcs {
		if r := res.Timers.Region(q); r != nil {
			t.baseProcPC[q] = r.PerCall()
			t.baseProcCalls[q] = r.Calls
		}
	}

	// Threshold (§IV-A).
	switch t.model.ThresholdMode {
	case models.ThresholdUniform32:
		th, err := t.uniform32Error()
		if err != nil {
			return err
		}
		f := t.model.ThresholdFactor
		if f == 0 {
			f = 1
		}
		t.baseline.Threshold = th * f
	default:
		t.baseline.Threshold = t.model.Threshold
	}
	return nil
}

// uniform32Error measures the correctness metric of the whole-program
// uniform 32-bit build (the supported single-precision configuration).
func (t *Tuner) uniform32Error() (float64, error) {
	all := transform.Atoms(t.prog)
	v, err := transform.Apply(t.prog, transform.Uniform(all, 4))
	if err != nil {
		return 0, fmt.Errorf("core: uniform-32 build: %w", err)
	}
	in, err := interp.New(v.Prog, interp.Config{Model: t.machine, TrapNonFinite: true, Engine: t.opts.Engine})
	if err != nil {
		return 0, err
	}
	if _, err := in.Run(); err != nil {
		return 0, fmt.Errorf("core: uniform-32 run: %w", err)
	}
	out, err := t.model.Extract(in)
	if err != nil {
		return 0, err
	}
	return t.model.Compare(t.baseOut, out)
}

// hotspotTime computes the hotspot CPU time of a run: self time of the
// hotspot module's baseline procedures plus the wrappers of *internal*
// hotspot procedures. Boundary wrappers (around entry procedures) run in
// the caller and are excluded — the blindness that §IV-C exposes.
//
// wrapperOf is the variant's authoritative generated-wrapper map
// (transform.Result.WrapperOf; nil for the wrapper-free baseline).
// Matching against it, rather than against a "_wrapper_" substring,
// keeps a user procedure that merely *looks* like a wrapper (e.g. one
// literally named foo_wrapper_x) from corrupting the attribution.
func (t *Tuner) hotspotTime(res *interp.Result, wrapperOf map[string]string) float64 {
	var sum float64
	for _, r := range res.Timers.Regions() {
		name := r.Name
		if t.hotspotProcs[name] {
			sum += r.Self
			continue
		}
		if callee, ok := wrapperOf[name]; ok && t.hotspotProcs[callee] && !t.entryProcs[callee] {
			sum += r.Self
		}
	}
	return sum
}

// measuredTime selects the guiding time metric.
func (t *Tuner) measuredTime(hotspot, total float64) float64 {
	if t.opts.WholeModel {
		return total
	}
	return hotspot
}

// Evaluate implements search.Evaluator: it generates, "compiles"
// (analyzes), runs, and scores one variant.
func (t *Tuner) Evaluate(a transform.Assignment) *search.Evaluation {
	return t.EvaluateSpan(nil, a)
}

// AttachMetrics implements fleet.MetricsAttacher: a fleet worker's
// tuner starts without a registry and adopts one when the first lease
// arrives with trace context asking for metrics, so the interpreter
// counters it feeds can be shipped back to the coordinator. Worker
// leases run sequentially, so attaching between evaluations is safe.
// Metrics never influence evaluation outcomes or the journal.
func (t *Tuner) AttachMetrics(reg *obs.Registry) {
	t.opts.Metrics = reg
}

// EvaluateSpan implements search.SpanEvaluator: identical to Evaluate,
// additionally attributing the interpreter execution to an "interp.run"
// child of sp and feeding interpreter counters to Options.Metrics. sp
// may be nil; outcomes are identical with or without it.
func (t *Tuner) EvaluateSpan(sp *obs.Span, a transform.Assignment) *search.Evaluation {
	ev := &search.Evaluation{
		Assignment: a,
		Lowered:    a.Lowered(),
		TotalAtoms: len(t.atoms),
	}
	v, err := transform.Apply(t.prog, a)
	if err != nil {
		// The paper's uncompilable variants (ROSE unparsing failures)
		// land here: a variant the toolchain cannot build is an error
		// outcome.
		ev.Status = search.StatusError
		ev.Detail = "transform: " + err.Error()
		t.notify(ev)
		return ev
	}

	var nrec *numerics.Recorder
	if t.opts.Numerics {
		nrec = numerics.NewRecorder(t.model.Name+".ft", numerics.Options{})
	}
	in, err := interp.New(v.Prog, interp.Config{
		Model:         t.machine,
		TrapNonFinite: true,
		Profile:       true,
		CycleBudget:   3 * t.baseline.TotalCycles, // §IV-A: 3x baseline timeout
		Context:       t.runCtx,                   // hard cancellation after the drain grace
		Numerics:      nrec,                       // nil unless Options.Numerics
		Engine:        t.opts.Engine,
	})
	if err != nil {
		ev.Status = search.StatusError
		ev.Detail = err.Error()
		t.notify(ev)
		return ev
	}
	isp := sp.Child(obs.SpanInterpRun)
	res, runErr := in.Run()
	if res != nil {
		isp.AttrFloat("cycles", res.Cycles)
		isp.AttrInt("steps", res.Steps)
	}
	if runErr != nil {
		isp.Attr("error", runErr.Error())
	}
	prof := nrec.Profile() // nil recorder -> nil profile
	if prof != nil {
		isp.AttrInt("numeric_ops", prof.Ops)
		isp.AttrInt("numeric_cancellations", prof.Cancellations)
		isp.AttrInt("numeric_catastrophic", prof.Catastrophic)
		isp.AttrFloat("numeric_max_divergence", prof.MaxDivergence)
		if nf := prof.FirstNonFinite; nf != nil {
			isp.Attr("numeric_first_nonfinite",
				fmt.Sprintf("%s:%d in %s (op %s)", prof.File, nf.Line, nf.Proc, nf.Op))
		}
	}
	isp.End()
	if m := t.opts.Metrics; m != nil {
		m.Counter(obs.MetricInterpRuns).Add(1)
		if res != nil {
			m.Counter(obs.MetricInterpSteps).Add(res.Steps)
		}
		if prof != nil {
			m.Counter(obs.MetricNumericOps).Add(prof.Ops)
			m.Counter(obs.MetricNumericCancellations).Add(prof.Cancellations)
			m.Counter(obs.MetricNumericCatastrophic).Add(prof.Catastrophic)
			m.Counter(obs.MetricNumericBranchDiverg).Add(prof.BranchDivergences)
			m.Counter(obs.MetricNumericDiscretizations).Add(prof.Discretizations)
			m.Counter(obs.MetricNumericNonFinite).Add(prof.NonFinite)
			m.Histogram(obs.HistNumericDivergence).Observe(prof.MaxDivergence)
		}
	}
	if runErr != nil {
		if re, ok := runErr.(*interp.RunError); ok && re.Kind == interp.FailCancelled {
			// Hard cancellation cut this run short. A truncated
			// measurement says nothing about the assignment, so it must
			// never be journaled as a variant outcome: unwind as a
			// cancellation instead (a resumed run re-evaluates it).
			panic(search.NewCancelled(context.Cause(t.runCtx)))
		}
		if re, ok := runErr.(*interp.RunError); ok && re.Kind == interp.FailTimeout {
			ev.Status = search.StatusTimeout
		} else {
			ev.Status = search.StatusError
		}
		ev.Detail = runErr.Error()
		t.recordProcPoints(ev, res, v.WrapperOf)
		t.notify(ev)
		return ev
	}

	out, err := t.model.Extract(in)
	if err == nil {
		ev.RelError, err = t.model.Compare(t.baseOut, out)
	}
	if err != nil {
		ev.Status = search.StatusError
		ev.Detail = err.Error()
		t.recordProcPoints(ev, res, v.WrapperOf)
		t.notify(ev)
		return ev
	}

	varTime := t.noiseFor(a.Key()).MedianOfN(t.measuredTime(t.hotspotTime(res, v.WrapperOf), res.Cycles), t.model.NRuns)
	ev.Speedup = t.baseTimeEq1 / varTime
	if ev.RelError <= t.baseline.Threshold {
		ev.Status = search.StatusPass
	} else {
		ev.Status = search.StatusFail
	}
	ev.Detail = fmt.Sprintf("wrappers=%d casts=%d", v.Wrappers, res.Casts)
	t.recordProcPoints(ev, res, v.WrapperOf)
	t.notify(ev)
	return ev
}

func (t *Tuner) notify(ev *search.Evaluation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.opts.Progress != nil {
		t.opts.Progress(ev)
	}
}

// recordProcPoints collects Fig. 6 data: for each hotspot procedure,
// the per-call CPU time under this variant's sub-assignment of that
// procedure's own variables (first observation of each unique
// sub-assignment is kept, matching the paper's "unique procedure
// variants"). wrapperOf is the variant's generated-wrapper map; only
// actual generated wrappers contribute to a procedure's wrapper time.
func (t *Tuner) recordProcPoints(ev *search.Evaluation, res *interp.Result, wrapperOf map[string]string) {
	if res == nil || res.Timers == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evalSeq++
	// Per-proc wrapper self time.
	wrapSelf := make(map[string]float64)
	for _, r := range res.Timers.Regions() {
		if callee, ok := wrapperOf[r.Name]; ok {
			wrapSelf[callee] += r.Self
		}
	}
	for q := range t.hotspotProcs {
		r := res.Timers.Region(q)
		if r == nil || r.Calls == 0 {
			continue
		}
		// Partial runs (errors, timeouts) bias per-call averages when a
		// procedure was cut off mid-schedule; only keep measurements
		// from procedures that ran (most of) their baseline schedule.
		if ev.Status == search.StatusError || ev.Status == search.StatusTimeout {
			if base := t.baseProcCalls[q]; base > 0 && r.Calls*5 < base*4 {
				continue
			}
		}
		key, lowered := t.subKey(q, ev.Assignment)
		pts := t.procPoints[q]
		if pts == nil {
			pts = make(map[string]*ProcPoint)
			t.procPoints[q] = pts
		}
		if _, seen := pts[key]; seen {
			continue
		}
		perCall := (r.Self + wrapSelf[q]) / float64(r.Calls)
		pt := &ProcPoint{
			Key:        key,
			Lowered:    lowered,
			PerCall:    perCall,
			FromIndex:  t.evalSeq,
			CallsSeen:  r.Calls,
			FailStatus: ev.Status,
		}
		if base := t.baseProcPC[q]; base > 0 && perCall > 0 {
			pt.Speedup = base / perCall
		}
		pts[key] = pt
	}
}

// subKey canonicalizes the assignment restricted to one procedure's
// atoms (module-level atoms are included in every procedure's key since
// they affect all of them).
func (t *Tuner) subKey(proc string, a transform.Assignment) (string, int) {
	var parts []string
	lowered := 0
	add := func(qnames []string) {
		for _, q := range qnames {
			if a.KindOf(q, 8) == 4 {
				parts = append(parts, q)
				lowered++
			}
		}
	}
	add(t.procAtoms[proc])
	add(t.procAtoms[t.model.Hotspot+".<module>"])
	return strings.Join(parts, ";"), lowered
}

// Fingerprint identifies everything that shapes the evaluation stream:
// the program source, the machine model, the noise seed, and the search
// options. A journal whose fingerprint differs must not be reused —
// its cached evaluations belong to a different experiment. Parallelism
// is deliberately excluded: evaluation logs are identical at every
// parallelism level, so a journal recorded at one level resumes
// correctly at any other.
func (t *Tuner) Fingerprint() string {
	criteria, budget := t.searchParams()
	return journal.Fingerprint(
		"model="+t.model.Name,
		"source="+t.model.Source,
		"machine="+t.machine.Signature(),
		fmt.Sprintf("seed=%d", t.opts.Seed),
		fmt.Sprintf("wholemodel=%v", t.opts.WholeModel),
		fmt.Sprintf("budget=%d", budget),
		fmt.Sprintf("minspeedup=%g", criteria.MinSpeedup),
		fmt.Sprintf("maxrelerror=%g", criteria.MaxRelError),
		fmt.Sprintf("nruns=%d", t.model.NRuns),
		fmt.Sprintf("noiserel=%g", t.model.NoiseRel),
	)
}

// EvaluationBudget returns the run's resolved evaluation budget
// (0 = unlimited) — what the progress reporter shows as the total.
func (t *Tuner) EvaluationBudget() int {
	_, budget := t.searchParams()
	return budget
}

// searchParams resolves the acceptance criteria and evaluation budget.
func (t *Tuner) searchParams() (search.Criteria, int) {
	criteria := search.Criteria{
		MaxRelError: t.baseline.Threshold,
		MinSpeedup:  t.opts.MinSpeedup,
	}
	budget := t.model.BudgetEvals
	if t.opts.MaxEvaluations > 0 {
		budget = t.opts.MaxEvaluations
	} else if t.opts.MaxEvaluations < 0 {
		budget = 0
	}
	return criteria, budget
}

// journalAbort carries a journal write failure out of the search: if
// the crash-safety layer cannot persist an evaluation, continuing to
// burn evaluations that would be lost on a crash defeats its purpose.
type journalAbort struct{ err error }

// journalState is everything openJournal replays from disk: the journal
// itself, warm-start evaluations, and — when the run is supervised —
// the events sidecar with its quarantine and salvage records.
type journalState struct {
	jnl    *journal.Journal
	events *journal.EventLog // nil when the run is not supervised
	warm   map[string]*search.Evaluation
	// salvaged holds evaluations rescued by an aborted prior run's
	// salvage events, for keys not already durable in the journal.
	salvaged map[string]*search.Evaluation
	// quarantined maps poisoned assignment keys to their rendered fault.
	quarantined map[string]string
}

func (s *journalState) close() {
	if s.events != nil {
		s.events.Close()
	}
	s.jnl.Close()
}

// openJournal opens (or creates) the evaluation journal per Options and
// returns it with the warm-start records replayed from it. When
// withEvents is set (a supervised run), the resilience events sidecar
// is opened alongside: on resume its quarantine records keep poisoned
// assignments from re-crashing the search, and its salvage records
// recover evaluations an aborted batch completed but never journaled.
func (t *Tuner) openJournal(withEvents bool) (*journalState, error) {
	hdr := journal.Header{Fingerprint: t.Fingerprint(), Model: t.model.Name}
	var (
		jnl *journal.Journal
		err error
	)
	if t.opts.Resume {
		jnl, err = journal.Open(t.opts.JournalPath, hdr)
	} else {
		jnl, err = journal.Create(t.opts.JournalPath, hdr)
	}
	if err != nil {
		return nil, err
	}
	ckptPath := journal.CheckpointPath(t.opts.JournalPath)
	if t.opts.Resume {
		if ck, ok, err := journal.LoadCheckpoint(ckptPath); err != nil {
			jnl.Close()
			return nil, err
		} else if ok {
			if err := journal.ValidateCheckpoint(ck, jnl); err != nil {
				jnl.Close()
				return nil, err
			}
		}
	}
	warm := make(map[string]*search.Evaluation, len(jnl.Records()))
	for _, r := range jnl.Records() {
		ev, err := r.Evaluation()
		if err != nil {
			jnl.Close()
			return nil, err
		}
		warm[r.AKey] = ev
	}
	js := &journalState{jnl: jnl, warm: warm}
	if !withEvents {
		return js, nil
	}

	epath := journal.EventsPath(t.opts.JournalPath)
	if t.opts.Resume {
		js.events, err = journal.OpenEvents(epath, hdr)
	} else {
		js.events, err = journal.CreateEvents(epath, hdr)
	}
	if err != nil {
		jnl.Close()
		return nil, err
	}
	js.quarantined = js.events.QuarantinedKeys()
	for _, rec := range js.events.SalvagedRecords() {
		if _, durable := warm[rec.AKey]; durable {
			continue // the journal proper wins over salvage events
		}
		ev, err := rec.Evaluation()
		if err != nil {
			js.close()
			return nil, err
		}
		if js.salvaged == nil {
			js.salvaged = make(map[string]*search.Evaluation)
		}
		js.salvaged[rec.AKey] = ev
	}
	return js, nil
}

// Run performs the full search and assembles the result. With
// Options.JournalPath set, the search is crash-safe: every evaluation
// is journaled and fsync'd as it completes, and with Options.Resume a
// prior journal is replayed so no evaluated variant is ever re-run.
//
// ctx bounds the run's lifetime (nil never cancels). Cancellation is
// two-phase: the moment ctx is done no *new* evaluation starts (the
// soft stop), and after Options.DrainGrace in-flight evaluations are
// hard-stopped mid-interpretation (with DrainGrace 0 they drain to
// completion). Either way the search unwinds in an orderly fashion: the
// journal keeps the completed deterministic prefix, completed siblings
// are salvaged to the events sidecar, the stop itself is recorded as a
// sidecar "cancelled" event (never in the journal proper), and Run
// returns the partial Result together with the *search.Cancelled error.
// A -resume run completes the search and produces a journal
// byte-identical to an uninterrupted run's.
//
// With a resilience knob set (Retries/FailFast/Breaker/MaxQuarantined/
// Watchdog/RetriesByClass) the evaluator runs under a
// resilience.Supervised wrapper. If the supervisor aborts the search —
// circuit breaker tripped or quarantine budget exhausted — Run returns
// the partial Result *and* the *resilience.AbortError: the completed
// work (log, journal, best variant so far) is preserved for graceful
// degradation, while the error signals that the search did not finish.
func (t *Tuner) Run(ctx context.Context) (*Result, error) {
	criteria, budget := t.searchParams()
	start := time.Now()

	// The run's root trace span. Everything below hangs off it, so the
	// per-phase self times of the trace telescope to its duration.
	root := t.opts.Trace.Root(obs.SpanTune)
	root.Attr("model", t.model.Name)
	root.AttrInt("budget", int64(budget))
	defer root.End()

	// Two-phase cancellation: ctx itself is the soft stop (gates new
	// evaluations in the search layer); the hard context reaches the
	// interpreter and fires DrainGrace later, cutting in-flight
	// evaluations short. With DrainGrace 0 there is no hard stop.
	t.runCtx = nil
	if ctx != nil && t.opts.DrainGrace > 0 {
		hard, cancelHard := context.WithCancelCause(context.Background())
		stop := make(chan struct{})
		defer close(stop)
		defer cancelHard(nil)
		go func() {
			select {
			case <-ctx.Done():
				timer := time.NewTimer(t.opts.DrainGrace)
				defer timer.Stop()
				select {
				case <-timer.C:
					cancelHard(context.Cause(ctx))
				case <-stop:
				}
			case <-stop:
			}
		}()
		t.runCtx = hard
	}
	// The log is pre-created (rather than left to the search) so the
	// completed evaluations survive a supervised abort's unwind and can
	// back the partial report.
	log := search.NewLog()
	sopts := search.Options{
		Criteria:       criteria,
		MaxEvaluations: budget,
		Parallelism:    t.opts.Parallelism,
		Log:            log,
		Span:           root,
		Metrics:        t.opts.Metrics,
	}
	supervising := t.opts.supervising()

	var dlog *ledger.DecisionLog
	if t.opts.DecisionPath != "" {
		dl, err := ledger.CreateDecisionLog(t.opts.DecisionPath, t.Fingerprint(), t.model.Name)
		if err != nil {
			return nil, err
		}
		dl.SetMetrics(t.opts.Metrics)
		defer dl.Close() // safety net; the explicit Close below is the real one
		sopts.Decisions = dl
		dlog = dl
	}

	resumed, salvaged := 0, 0
	var jnl *journal.Journal
	var events *journal.EventLog
	var preQuarantined map[string]string
	if t.opts.JournalPath != "" {
		js, err := t.openJournal(supervising)
		if err != nil {
			return nil, err
		}
		defer js.close()
		jnl, events, preQuarantined = js.jnl, js.events, js.quarantined
		resumed = len(js.warm)
		salvaged = len(js.salvaged)
		fp := jnl.Header().Fingerprint
		ckptPath := journal.CheckpointPath(t.opts.JournalPath)
		sopts.Warm = js.warm
		sopts.Salvaged = js.salvaged
		sopts.OnAdd = func(ev *search.Evaluation, replayed bool) {
			if !replayed {
				jsp := root.Child(obs.SpanJournalAppend)
				jsp.AttrInt("index", int64(ev.Index))
				err := jnl.Append(journal.FromEvaluation(fp, ev))
				jsp.End()
				if err != nil {
					panic(journalAbort{err})
				}
				if m := t.opts.Metrics; m != nil {
					m.Counter(obs.MetricJournalAppends).Add(1)
				}
			}
			// The checkpoint is rewritten after the journal append is
			// durable, so it can lag the journal but never lead it.
			if err := journal.SaveCheckpoint(ckptPath, journal.Checkpoint{
				Fingerprint: fp, Model: t.model.Name, Evaluations: ev.Index,
			}); err != nil {
				panic(journalAbort{err})
			}
		}
		if events != nil {
			ev := events
			sopts.OnSalvage = func(e *search.Evaluation) {
				rec := journal.FromEvaluation(fp, e)
				if err := ev.Append(journal.EventRecord{
					Type: journal.EventSalvaged, AKey: rec.AKey, Rec: &rec,
				}); err != nil {
					panic(journalAbort{err})
				}
			}
		}
	}

	evaluator := search.Evaluator(t)
	if t.opts.WrapEvaluator != nil {
		evaluator = t.opts.WrapEvaluator(evaluator)
	}
	if coord := t.opts.Fleet; coord != nil {
		rt := fleet.Runtime{
			// The wrapped in-process evaluator is the degrade fallback, so
			// a collapsed pool changes where evaluations run but never what
			// they compute.
			Local:       evaluator,
			Fingerprint: t.Fingerprint(),
			Metrics:     t.opts.Metrics,
			Trace:       t.opts.Trace,
		}
		if events != nil {
			ev := events
			rt.OnEvent = func(e fleet.Event) {
				// Fleet events are telemetry, not resume state (the
				// resume-critical quarantine/salvage records travel the
				// supervisor path below with journalAbort semantics), and
				// they fire on coordinator goroutines where a panic would
				// not unwind the search — so appends are best-effort.
				rec := journal.EventRecord{
					Type: e.Type, AKey: e.Key, Attempt: e.Attempt,
					Fault: e.Detail, Kind: e.Kind,
				}
				rec.SetWorker(e.Worker)
				_ = ev.Append(rec)
			}
		}
		if err := coord.Start(t.runCtx, rt); err != nil {
			return nil, err
		}
		defer coord.Close()
		evaluator = coord
	}
	var sup *resilience.Supervised
	if supervising {
		breaker := t.opts.Breaker
		if t.opts.FailFast && (breaker == 0 || breaker > 1) {
			breaker = 1
		}
		sup = &resilience.Supervised{
			Inner:          evaluator,
			MaxRetries:     t.opts.Retries,
			RetriesByKind:  t.opts.RetriesByClass,
			Watchdog:       t.opts.Watchdog,
			Breaker:        breaker,
			HalfOpen:       t.opts.HalfOpen,
			MaxQuarantined: t.opts.MaxQuarantined,
			Backoff:        resilience.Backoff{Base: t.opts.RetryBackoff, Seed: t.opts.Seed},
			Metrics:        t.opts.Metrics,
		}
		if t.opts.Fleet != nil && t.opts.Retries == 0 && len(t.opts.RetriesByClass) == 0 {
			// A fleet with no retry budget would quarantine an assignment
			// on its first worker death; give it the standard per-kind
			// budgets so routine kills become lease reassignments.
			sup.MaxRetries = DefaultFleetRetries
			sup.RetriesByKind = resilience.DefaultRetryBudgets(DefaultFleetRetries)
		}
		if events != nil {
			ev := events
			sup.OnEvent = func(e resilience.Event) {
				if err := ev.Append(journal.EventRecord{
					Type: string(e.Type), AKey: e.Key, Attempt: e.Attempt,
					Fault: e.Fault, Kind: e.Kind, BackoffNS: int64(e.Backoff),
				}); err != nil {
					panic(journalAbort{err})
				}
			}
		}
		for k, fault := range preQuarantined {
			sup.Quarantine(k, fault)
		}
		evaluator = sup
	}

	outcome, abortErr, cancelErr, err := func() (out *search.Outcome, abort *resilience.AbortError, cancelled *search.Cancelled, err error) {
		defer func() {
			if r := recover(); r != nil {
				if ja, ok := r.(journalAbort); ok {
					err = ja.err
					return
				}
				if ae, ok := r.(*resilience.AbortError); ok {
					abort = ae
					return
				}
				if ce, ok := r.(*search.Cancelled); ok {
					cancelled = ce
					return
				}
				panic(r) // genuine crash (e.g. injected fault): propagate
			}
		}()
		return search.Precimonious(ctx, evaluator, t.atoms, sopts), nil, nil, nil
	}()
	if err != nil {
		return nil, err
	}
	if abortErr != nil || cancelErr != nil {
		// Graceful degradation: the pre-created log holds everything that
		// completed (and was journaled) before the abort or stop.
		outcome = &search.Outcome{Log: log, Converged: false}
	}
	t.log = outcome.Log

	// The orderly-shutdown record goes to the events sidecar, never the
	// journal proper — an interrupted-then-resumed run must reproduce the
	// uninterrupted journal byte for byte. An unsupervised run has no
	// sidecar open; one is opened (or created) just for this record, and
	// a failure to write it is tolerated: the journal and checkpoint
	// already carry everything resume needs.
	if cancelErr != nil && jnl != nil {
		rec := journal.EventRecord{Type: journal.EventCancelled, Fault: cancelErr.Error()}
		if events != nil {
			_ = events.Append(rec)
		} else if e, eerr := journal.OpenEvents(journal.EventsPath(t.opts.JournalPath), jnl.Header()); eerr == nil {
			_ = e.Append(rec)
			e.Close()
		}
	}

	// The Done checkpoint is skipped on abort or cancellation: the search
	// is not done, and a resumed run must pick up where this one stopped.
	if jnl != nil && abortErr == nil && cancelErr == nil {
		if err := journal.SaveCheckpoint(journal.CheckpointPath(t.opts.JournalPath), journal.Checkpoint{
			Fingerprint: jnl.Header().Fingerprint,
			Model:       t.model.Name,
			Evaluations: len(outcome.Log.Evals),
			Done:        true,
			Converged:   outcome.Converged,
			Minimal:     append([]string(nil), outcome.Minimal...),
		}); err != nil {
			return nil, err
		}
	}

	// Settle the fleet before snapshotting anything: Close is idempotent
	// (the deferred Close becomes a no-op), and waiting for the worker
	// loops here makes the Stats and Metrics snapshots final — late
	// results and restarts in flight at search end are counted.
	var fleetStats *fleet.Stats
	if coord := t.opts.Fleet; coord != nil {
		coord.Close()
		st := coord.Stats()
		fleetStats = &st
	}

	// Close the decision log before snapshotting metrics or archiving
	// the manifest: the digest must cover the complete stream, and a
	// sidecar write failure should surface on an otherwise-successful
	// run rather than vanish (an aborted/cancelled run's partial result
	// matters more than its telemetry, so the error is dropped there).
	var decisionDigest string
	var decisionEvents int64
	if dlog != nil {
		derr := dlog.Close()
		decisionDigest = dlog.Digest()
		decisionEvents = dlog.Events()
		if derr != nil && abortErr == nil && cancelErr == nil {
			return nil, derr
		}
	}

	result := &Result{
		Model:        t.model,
		Options:      t.opts,
		Baseline:     t.baseline,
		Outcome:      outcome,
		Criteria:     criteria,
		ProcVariants: make(map[string][]ProcPoint),
		Resumed:      resumed,
		Salvaged:     salvaged,
		Aborted:      abortErr,
		Cancelled:    cancelErr,
		Fleet:        fleetStats,
	}
	if sup != nil {
		st := sup.Stats()
		result.Resilience = &st
	}
	if t.opts.Metrics != nil {
		snap := t.opts.Metrics.Snapshot()
		result.Metrics = &snap
	}
	for q, pts := range t.procPoints {
		list := make([]ProcPoint, 0, len(pts))
		for _, p := range pts {
			list = append(list, *p)
		}
		// procPoints is a map; iteration order varies run to run. Sort
		// by discovery index to honor the documented guarantee that
		// results are independent of evaluation order. FromIndex is
		// unique within a procedure: each evaluation contributes at most
		// one new sub-assignment point per procedure.
		sort.Slice(list, func(i, j int) bool { return list[i].FromIndex < list[j].FromIndex })
		result.ProcVariants[q] = list
	}

	// Archive the run manifest. Aborted and cancelled runs archive too —
	// a ledger that only remembers successes can't explain a regression —
	// but like the decision sidecar, an archive failure only fails an
	// otherwise-successful run.
	if t.opts.LedgerDir != "" {
		m := t.buildManifest(result, start, abortErr, cancelErr, decisionDigest, decisionEvents)
		led, lerr := ledger.Open(t.opts.LedgerDir)
		if lerr == nil {
			_, lerr = led.Put(m)
		}
		if lerr != nil && abortErr == nil && cancelErr == nil {
			return nil, lerr
		}
	}

	if abortErr != nil {
		return result, abortErr
	}
	if cancelErr != nil {
		return result, cancelErr
	}
	return result, nil
}

// buildManifest assembles the run's ledger manifest from the completed
// Result.
func (t *Tuner) buildManifest(res *Result, start time.Time, abortErr *resilience.AbortError, cancelErr *search.Cancelled, decisionDigest string, decisionEvents int64) *ledger.Manifest {
	criteria, budget := t.searchParams()
	m := &ledger.Manifest{
		Kind: ledger.ManifestKind, V: ledger.ManifestVersion,
		Model:       t.model.Name,
		Fingerprint: t.Fingerprint(),
		// The machine *name* is for humans; the full parameter signature
		// is already folded into the fingerprint above.
		Machine:     t.machine.Name,
		Engine:      t.opts.Engine.String(),
		Seed:        t.opts.Seed,
		WholeModel:  t.opts.WholeModel,
		Budget:      budget,
		MaxRelError: criteria.MaxRelError,
		MinSpeedup:  criteria.MinSpeedup,
		Parallelism: t.opts.Parallelism,

		StartUnixNS: start.UnixNano(),
		WallMS:      time.Since(start).Milliseconds(),

		Outcome:      "completed",
		Converged:    res.Outcome.Converged,
		Evaluations:  len(res.Outcome.Log.Evals),
		Resumed:      res.Resumed,
		Salvaged:     res.Salvaged,
		TotalAtoms:   len(t.atoms),
		MinimalAtoms: len(res.Outcome.Minimal),

		Fleet:   res.Fleet,
		Metrics: res.Metrics,

		JournalPath:    t.opts.JournalPath,
		DecisionPath:   t.opts.DecisionPath,
		DecisionDigest: decisionDigest,
		DecisionEvents: decisionEvents,
	}
	if abortErr != nil {
		m.Outcome = "aborted"
	}
	if cancelErr != nil {
		m.Outcome = "cancelled"
	}
	if len(res.Outcome.Log.Evals) > 0 {
		m.Statuses = make(map[string]int)
		for _, ev := range res.Outcome.Log.Evals {
			m.Statuses[ev.Status.String()]++
		}
	}
	if best := res.Outcome.Log.Best(criteria); best != nil {
		m.BestSpeedup = best.Speedup
		m.BestRelError = best.RelError
		m.BestLowered = best.Lowered
	}
	if res.Metrics != nil {
		m.Quantiles = res.Metrics.QuantileSummary()
	}
	return m
}
