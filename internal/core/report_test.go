package core

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/transform"
)

// fakeResult builds a Result with a synthetic log for renderer tests.
func fakeResult(t *testing.T) *Result {
	t.Helper()
	log := search.NewLog()
	add := func(status search.Status, speedup, relerr float64, lowered int, name string) {
		log.Add(&search.Evaluation{
			Assignment: transform.Assignment{name: 4},
			Status:     status, Speedup: speedup, RelError: relerr,
			Lowered: lowered, TotalAtoms: 10,
		})
	}
	add(search.StatusPass, 1.9, 1e-3, 9, "a")
	add(search.StatusPass, 1.2, 1e-5, 5, "b")
	add(search.StatusFail, 2.1, 5.0, 10, "c")
	add(search.StatusError, 0, 0, 10, "d")
	add(search.StatusTimeout, 0, 0, 10, "e")
	return &Result{
		Model:    models.Funarc(),
		Baseline: &Baseline{TotalCycles: 1e6, HotspotCycles: 1.5e5, HotspotShare: 0.15, AtomCount: 10, Threshold: 1e-2},
		Outcome: &search.Outcome{
			Minimal:   []string{"m.p.keep"},
			Log:       log,
			Converged: false,
		},
		Criteria:     search.Criteria{MaxRelError: 1e-2, MinSpeedup: 1},
		ProcVariants: map[string][]ProcPoint{"m.p": {{Key: "", Speedup: 1, FromIndex: 2}, {Key: "x", Speedup: 0.5, FromIndex: 1}}},
	}
}

func TestTableIIRowCounts(t *testing.T) {
	row := fakeResult(t).TableIIRow()
	if row.Total != 5 {
		t.Fatalf("total %d", row.Total)
	}
	if row.PassPct != 40 || row.FailPct != 20 || row.TimeoutPct != 20 || row.ErrorPct != 20 {
		t.Errorf("percentages: %+v", row)
	}
	if row.BestSpeedup != 1.9 {
		t.Errorf("best speedup %.2f (the 2.1x variant fails correctness)", row.BestSpeedup)
	}
	if row.Converged {
		t.Error("converged flag lost")
	}
}

func TestRenderMentionsEverything(t *testing.T) {
	out := fakeResult(t).Render()
	for _, want := range []string{
		"funarc", "search atoms: 10", "hotspot share 15.0%",
		"variants explored: 5", "did NOT converge",
		"best passing variant: 1.90x", "m.p.keep",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderNoPassingVariant(t *testing.T) {
	r := fakeResult(t)
	r.Criteria.MaxRelError = 1e-9 // nothing passes
	if !strings.Contains(r.Render(), "no passing variant") {
		t.Error("missing no-passing message")
	}
}

func TestSortedProcVariants(t *testing.T) {
	r := fakeResult(t)
	pts := r.SortedProcVariants("m.p")
	if len(pts) != 2 || pts[0].FromIndex != 1 || pts[1].FromIndex != 2 {
		t.Errorf("not sorted by discovery: %+v", pts)
	}
	if len(r.SortedProcVariants("nope")) != 0 {
		t.Error("unknown proc returned points")
	}
	names := r.ProcNames()
	if len(names) != 1 || names[0] != "m.p" {
		t.Errorf("ProcNames: %v", names)
	}
}

func TestWrappedCallee(t *testing.T) {
	cases := map[string]struct {
		callee string
		ok     bool
	}{
		"mod.flux4_wrapper_88x":        {"mod.flux4", true},
		"mod.f_wrapper_4_wrapper_8":    {"mod.f_wrapper_4", true},
		"mod.plain":                    {"", false},
		"atm.srk3_wrapper_4444444444x": {"atm.srk3", true},
	}
	for in, want := range cases {
		got, ok := wrappedCallee(in)
		if ok != want.ok || got != want.callee {
			t.Errorf("wrappedCallee(%q) = %q, %v; want %q, %v", in, got, ok, want.callee, want.ok)
		}
	}
}

func TestEntryProcs(t *testing.T) {
	m := models.MPASA()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	entries := entryProcs(prog, m.Hotspot)
	if !entries["atm_time_integration.atm_srk3"] {
		t.Errorf("srk3 (called from main) not an entry proc: %v", entries)
	}
	if entries["atm_time_integration.flux4"] {
		t.Error("flux4 (internal) marked as entry proc")
	}
	if entries["atm_time_integration.atm_compute_dyn_tend_work"] {
		t.Error("dyn_tend (internal) marked as entry proc")
	}
}

// TestWholeModelOptionChangesMetric: the same variant gets a different
// speedup under hotspot vs whole-model guidance (the §IV-C contrast).
func TestWholeModelOptionChangesMetric(t *testing.T) {
	m := models.MPASA()
	mk := func(whole bool) float64 {
		tn, err := New(m, Options{Seed: 1, WholeModel: whole})
		if err != nil {
			t.Fatal(err)
		}
		a := transform.Uniform(tn.Atoms(), 4)
		a["atm_time_integration.atm_compute_dyn_tend_work.p0work"] = 8
		ev := tn.Evaluate(a)
		if ev.Status != search.StatusPass && ev.Status != search.StatusFail {
			t.Fatalf("variant did not run: %v %s", ev.Status, ev.Detail)
		}
		return ev.Speedup
	}
	hot := mk(false)
	whole := mk(true)
	t.Logf("knob variant: hotspot-guided %.3fx, whole-model-guided %.3fx", hot, whole)
	if hot < 1.6 {
		t.Errorf("hotspot speedup %.2f, want ~1.9x", hot)
	}
	if whole > 1.25 {
		t.Errorf("whole-model speedup %.2f, want ~1x (boundary casting strips the gain)", whole)
	}
	if whole >= hot {
		t.Error("whole-model metric should be below the hotspot metric")
	}
}
