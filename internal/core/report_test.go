package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/gptl"
	"repro/internal/interp"
	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/transform"
)

// fakeResult builds a Result with a synthetic log for renderer tests.
func fakeResult(t *testing.T) *Result {
	t.Helper()
	log := search.NewLog()
	add := func(status search.Status, speedup, relerr float64, lowered int, name string) {
		log.Add(&search.Evaluation{
			Assignment: transform.Assignment{name: 4},
			Status:     status, Speedup: speedup, RelError: relerr,
			Lowered: lowered, TotalAtoms: 10,
		})
	}
	add(search.StatusPass, 1.9, 1e-3, 9, "a")
	add(search.StatusPass, 1.2, 1e-5, 5, "b")
	add(search.StatusFail, 2.1, 5.0, 10, "c")
	add(search.StatusError, 0, 0, 10, "d")
	add(search.StatusTimeout, 0, 0, 10, "e")
	return &Result{
		Model:    models.Funarc(),
		Baseline: &Baseline{TotalCycles: 1e6, HotspotCycles: 1.5e5, HotspotShare: 0.15, AtomCount: 10, Threshold: 1e-2},
		Outcome: &search.Outcome{
			Minimal:   []string{"m.p.keep"},
			Log:       log,
			Converged: false,
		},
		Criteria:     search.Criteria{MaxRelError: 1e-2, MinSpeedup: 1},
		ProcVariants: map[string][]ProcPoint{"m.p": {{Key: "", Speedup: 1, FromIndex: 2}, {Key: "x", Speedup: 0.5, FromIndex: 1}}},
	}
}

func TestTableIIRowCounts(t *testing.T) {
	row := fakeResult(t).TableIIRow()
	if row.Total != 5 {
		t.Fatalf("total %d", row.Total)
	}
	if row.PassPct != 40 || row.FailPct != 20 || row.TimeoutPct != 20 || row.ErrorPct != 20 {
		t.Errorf("percentages: %+v", row)
	}
	if row.BestSpeedup != 1.9 {
		t.Errorf("best speedup %.2f (the 2.1x variant fails correctness)", row.BestSpeedup)
	}
	if row.Converged {
		t.Error("converged flag lost")
	}
}

func TestRenderMentionsEverything(t *testing.T) {
	out := fakeResult(t).Render()
	for _, want := range []string{
		"funarc", "search atoms: 10", "hotspot share 15.0%",
		"variants explored: 5", "did NOT converge",
		"best passing variant: 1.90x", "m.p.keep",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderNoPassingVariant(t *testing.T) {
	r := fakeResult(t)
	r.Criteria.MaxRelError = 1e-9 // nothing passes
	if !strings.Contains(r.Render(), "no passing variant") {
		t.Error("missing no-passing message")
	}
}

func TestSortedProcVariants(t *testing.T) {
	r := fakeResult(t)
	pts := r.SortedProcVariants("m.p")
	if len(pts) != 2 || pts[0].FromIndex != 1 || pts[1].FromIndex != 2 {
		t.Errorf("not sorted by discovery: %+v", pts)
	}
	if len(r.SortedProcVariants("nope")) != 0 {
		t.Error("unknown proc returned points")
	}
	names := r.ProcNames()
	if len(names) != 1 || names[0] != "m.p" {
		t.Errorf("ProcNames: %v", names)
	}
}

// timedResult builds an interp.Result whose timers hold the given
// region self times (one call each).
func timedResult(selfs map[string]float64) *interp.Result {
	now := 0.0
	tm := gptl.New(func() float64 { return now })
	names := make([]string, 0, len(selfs))
	for n := range selfs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tm.Start(n)
		now += selfs[n]
		if err := tm.Stop(n); err != nil {
			panic(err)
		}
	}
	return &interp.Result{Timers: tm}
}

// TestHotspotTimeExactWrapperMatch: hotspot CPU time counts hotspot
// procedures and *generated* wrappers of internal hotspot procedures —
// and nothing whose name merely looks like a wrapper's. A user
// procedure literally named foo_wrapper_x must not be misattributed.
func TestHotspotTimeExactWrapperMatch(t *testing.T) {
	tn := &Tuner{
		hotspotProcs: map[string]bool{"hot.flux": true, "hot.flux_wrapper_88x": true},
		entryProcs:   map[string]bool{"hot.entry": true},
	}
	res := timedResult(map[string]float64{
		"hot.flux":              100, // hotspot proc
		"hot.flux_wrapper_88x":  40,  // USER proc with a wrapper-like name (counts as itself)
		"hot.flux_wrapper_44x":  7,   // generated wrapper of an internal hotspot proc
		"hot.entry_wrapper_84x": 9,   // generated boundary wrapper: excluded
		"main.driver":           500, // outside the hotspot
		"phys.f_wrapper_x":      25,  // user proc elsewhere, wrapper-like name
	})
	wrapperOf := map[string]string{
		"hot.flux_wrapper_44x":  "hot.flux",
		"hot.entry_wrapper_84x": "hot.entry",
	}
	if got := tn.hotspotTime(res, wrapperOf); got != 147 {
		t.Errorf("hotspotTime = %g, want 147 (100 + 40 + 7)", got)
	}
	// Baseline runs carry no wrapper map at all.
	if got := tn.hotspotTime(res, nil); got != 140 {
		t.Errorf("baseline hotspotTime = %g, want 140", got)
	}
}

// TestRecordProcPointsExactWrapperMatch: a user procedure named like a
// wrapper of a hotspot procedure must not inflate that procedure's
// per-call time; only the variant's actual generated wrappers do.
func TestRecordProcPointsExactWrapperMatch(t *testing.T) {
	tn := &Tuner{
		model:         &models.Model{Hotspot: "hot"},
		hotspotProcs:  map[string]bool{"hot.flux": true},
		baseProcCalls: map[string]int64{"hot.flux": 1},
		baseProcPC:    map[string]float64{"hot.flux": 216},
		procPoints:    make(map[string]map[string]*ProcPoint),
		procAtoms:     map[string][]string{"hot.flux": {"hot.flux.x"}},
	}
	res := timedResult(map[string]float64{
		"hot.flux":             100,
		"hot.flux_wrapper_88x": 40, // user proc: must NOT count toward flux
		"hot.flux_wrapper_44x": 8,  // generated wrapper: must count
	})
	ev := &search.Evaluation{
		Assignment: transform.Assignment{"hot.flux.x": 4},
		Status:     search.StatusPass,
	}
	tn.recordProcPoints(ev, res, map[string]string{"hot.flux_wrapper_44x": "hot.flux"})
	pts := tn.procPoints["hot.flux"]
	if len(pts) != 1 {
		t.Fatalf("recorded %d points, want 1", len(pts))
	}
	for _, pt := range pts {
		if pt.PerCall != 108 {
			t.Errorf("per-call = %g, want 108 (self 100 + generated wrapper 8)", pt.PerCall)
		}
		if pt.Speedup != 2 {
			t.Errorf("speedup = %g, want 2 (baseline 216 / 108)", pt.Speedup)
		}
	}
}

func TestEntryProcs(t *testing.T) {
	m := models.MPASA()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	entries := entryProcs(prog, m.Hotspot)
	if !entries["atm_time_integration.atm_srk3"] {
		t.Errorf("srk3 (called from main) not an entry proc: %v", entries)
	}
	if entries["atm_time_integration.flux4"] {
		t.Error("flux4 (internal) marked as entry proc")
	}
	if entries["atm_time_integration.atm_compute_dyn_tend_work"] {
		t.Error("dyn_tend (internal) marked as entry proc")
	}
}

// TestWholeModelOptionChangesMetric: the same variant gets a different
// speedup under hotspot vs whole-model guidance (the §IV-C contrast).
func TestWholeModelOptionChangesMetric(t *testing.T) {
	m := models.MPASA()
	mk := func(whole bool) float64 {
		tn, err := New(m, Options{Seed: 1, WholeModel: whole})
		if err != nil {
			t.Fatal(err)
		}
		a := transform.Uniform(tn.Atoms(), 4)
		a["atm_time_integration.atm_compute_dyn_tend_work.p0work"] = 8
		ev := tn.Evaluate(a)
		if ev.Status != search.StatusPass && ev.Status != search.StatusFail {
			t.Fatalf("variant did not run: %v %s", ev.Status, ev.Detail)
		}
		return ev.Speedup
	}
	hot := mk(false)
	whole := mk(true)
	t.Logf("knob variant: hotspot-guided %.3fx, whole-model-guided %.3fx", hot, whole)
	if hot < 1.6 {
		t.Errorf("hotspot speedup %.2f, want ~1.9x", hot)
	}
	if whole > 1.25 {
		t.Errorf("whole-model speedup %.2f, want ~1x (boundary casting strips the gain)", whole)
	}
	if whole >= hot {
		t.Error("whole-model metric should be below the hotspot metric")
	}
}
