package core

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/search"
)

func TestFunarcTune(t *testing.T) {
	tn, err := New(models.Funarc(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := len(tn.Atoms()); got != 8 {
		t.Fatalf("funarc atoms = %d, want 8", got)
	}
	res, err := tn.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.TableIIRow()
	t.Logf("funarc: %d variants, best %.3fx, minimal=%v", row.Total, row.BestSpeedup, res.Outcome.Minimal)
	if !res.Outcome.Converged {
		t.Error("funarc search did not converge")
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no passing funarc variant")
	}
	if best.Speedup < 1.1 || best.Speedup > 2.0 {
		t.Errorf("funarc best speedup %.3f out of the expected ~1.3-1.5x band", best.Speedup)
	}
	if best.RelError > 5e-7 {
		t.Errorf("best variant error %.3e above threshold", best.RelError)
	}
}

func TestMPASTuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full MPAS-A search is slow")
	}
	tn, err := New(models.MPASA(), Options{Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bl := tn.BaselineInfo()
	if bl.HotspotShare < 0.08 || bl.HotspotShare > 0.25 {
		t.Errorf("hotspot share %.2f out of band", bl.HotspotShare)
	}
	res, err := tn.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.TableIIRow()
	t.Logf("\n%s", res.Render())
	t.Logf("table row: %+v", row)

	best := res.Best()
	if best == nil {
		t.Fatal("no passing MPAS-A variant")
	}
	if best.Speedup < 1.7 {
		t.Errorf("best MPAS-A hotspot speedup %.2f, want ~1.9x", best.Speedup)
	}
	// The 1-minimal set should be small and include the p0work knob.
	found := false
	for _, q := range res.Outcome.Minimal {
		if strings.Contains(q, "p0work") {
			found = true
		}
	}
	if !found {
		t.Errorf("minimal set %v does not include the p0work knob", res.Outcome.Minimal)
	}
	if row.Total < 10 {
		t.Errorf("only %d variants explored; expected a real search", row.Total)
	}
	// Fig. 6 data must exist for the flux functions.
	if len(res.ProcVariants["atm_time_integration.flux4"]) == 0 {
		t.Error("no per-procedure variants recorded for flux4")
	}
	// Every evaluation classified.
	for _, ev := range res.Outcome.Log.Evals {
		switch ev.Status {
		case search.StatusPass, search.StatusFail, search.StatusTimeout, search.StatusError:
		default:
			t.Errorf("unclassified evaluation: %+v", ev)
		}
	}
}
