package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/models"
	"repro/internal/search"
)

// runJournaled runs a full funarc tune against the given journal path,
// recovering an injected-fault panic into the third return value.
func runJournaled(t *testing.T, opts Options) (res *Result, err error, fault *search.InjectedFault) {
	t.Helper()
	tn, err := New(models.Funarc(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*search.InjectedFault)
			if !ok {
				panic(r)
			}
			fault = f
		}
	}()
	res, err = tn.Run(nil)
	return
}

// TestJournalKillResumeByteIdentical is the acceptance test for the
// crash-safe journal: a tune killed after ANY number of evaluations and
// resumed with -resume must leave a journal byte-identical to an
// uninterrupted run's, find the same 1-minimal set, and never re-run a
// journaled evaluation. The kill is injected in-process so the "kill" can
// land between an evaluation's journal fsync and the next evaluation —
// the paper's 12-hour MOM6 job death, compressed.
func TestJournalKillResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	res, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.Outcome.Log.Evals)
	refMin := fmt.Sprint(res.Outcome.Minimal)

	// Kill at the first evaluation, early, mid-search, and at the very
	// last evaluation. (The search layer sweeps every kill point
	// exhaustively in its own tests; here the full stack — journal file,
	// checkpoint, tuner lifecycle — is exercised at the interesting ones.)
	for _, kill := range []int{0, 1, total / 2, total - 1} {
		path := filepath.Join(dir, fmt.Sprintf("kill%d.jsonl", kill))
		_, err, fault := runJournaled(t, Options{
			Seed: 1, JournalPath: path,
			WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
				return &search.FaultInjector{Inner: inner, Limit: int64(kill)}
			},
		})
		if err != nil {
			t.Fatalf("kill=%d: unexpected error %v", kill, err)
		}
		if fault == nil {
			t.Fatalf("kill=%d: fault did not fire", kill)
		}

		res2, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: path, Resume: true})
		if err != nil || fault != nil {
			t.Fatalf("kill=%d: resume failed: err=%v fault=%v", kill, err, fault)
		}
		gotBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotBytes) != string(refBytes) {
			t.Errorf("kill=%d: resumed journal differs from uninterrupted journal (%d vs %d bytes)",
				kill, len(gotBytes), len(refBytes))
		}
		if got := fmt.Sprint(res2.Outcome.Minimal); got != refMin {
			t.Errorf("kill=%d: minimal %s, want %s", kill, got, refMin)
		}
		if res2.Resumed > kill {
			t.Errorf("kill=%d: %d evaluations replayed, at most %d were journaled", kill, res2.Resumed, kill)
		}
		if len(res2.Outcome.Log.Evals) != total {
			t.Errorf("kill=%d: resumed log holds %d evals, want %d", kill, len(res2.Outcome.Log.Evals), total)
		}

		ck, ok, err := journal.LoadCheckpoint(journal.CheckpointPath(path))
		if err != nil || !ok {
			t.Fatalf("kill=%d: no checkpoint after resume: %v", kill, err)
		}
		if !ck.Done || ck.Evaluations != total || fmt.Sprint(ck.Minimal) != refMin {
			t.Errorf("kill=%d: final checkpoint %+v", kill, ck)
		}
	}
}

// TestJournalResumeOfFinishedRun: resuming a journal from a run that
// completed replays everything and evaluates nothing new.
func TestJournalResumeOfFinishedRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	res1, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: path})
	if err != nil || fault != nil {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	before, _ := os.ReadFile(path)

	res2, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: path, Resume: true})
	if err != nil || fault != nil {
		t.Fatalf("resume: err=%v fault=%v", err, fault)
	}
	if res2.Resumed != len(res1.Outcome.Log.Evals) {
		t.Errorf("Resumed = %d, want all %d", res2.Resumed, len(res1.Outcome.Log.Evals))
	}
	if fmt.Sprint(res2.Outcome.Minimal) != fmt.Sprint(res1.Outcome.Minimal) {
		t.Errorf("minimal changed across replay: %v vs %v", res2.Outcome.Minimal, res1.Outcome.Minimal)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("replaying a finished run modified the journal")
	}
}

// TestJournalRejectsForeignConfiguration: a journal recorded under one
// seed (or any other fingerprinted option) must not silently poison a
// differently-configured run.
func TestJournalRejectsForeignConfiguration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: path}); err != nil || fault != nil {
		t.Fatalf("err=%v fault=%v", err, fault)
	}
	tn, err := New(models.Funarc(), Options{Seed: 2, JournalPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(nil); err == nil {
		t.Error("resume with a different seed accepted a stale journal")
	}
	// Without -resume, an existing journal holding evaluations must not
	// be clobbered even by an identically-configured run.
	tn2, err := New(models.Funarc(), Options{Seed: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.Run(nil); err == nil {
		t.Error("fresh run overwrote a journal holding evaluations")
	}
}

// TestFingerprintSensitivity: the fingerprint must change with any
// option that shapes the evaluation stream, and must NOT change with
// parallelism (logs are parallelism-invariant by construction).
func TestFingerprintSensitivity(t *testing.T) {
	fp := func(opts Options) string {
		tn, err := New(models.Funarc(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return tn.Fingerprint()
	}
	base := fp(Options{Seed: 1})
	if fp(Options{Seed: 1}) != base {
		t.Error("fingerprint not deterministic")
	}
	if fp(Options{Seed: 2}) == base {
		t.Error("seed not fingerprinted")
	}
	if fp(Options{Seed: 1, WholeModel: true}) == base {
		t.Error("whole-model guidance not fingerprinted")
	}
	if fp(Options{Seed: 1, MaxEvaluations: 3}) == base {
		t.Error("evaluation budget not fingerprinted")
	}
	if fp(Options{Seed: 1, MinSpeedup: 1.5}) == base {
		t.Error("acceptance criteria not fingerprinted")
	}
	if fp(Options{Seed: 1, Parallelism: 8}) != base {
		t.Error("parallelism must not be fingerprinted: journals resume at any level")
	}
}
