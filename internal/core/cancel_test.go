package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/transform"
)

// cancelAfter cancels a context once n evaluations have completed — an
// in-process stand-in for a SIGTERM or an expired wall-clock budget
// landing mid-batch.
type cancelAfter struct {
	inner  search.Evaluator
	cancel context.CancelFunc
	after  int64
	n      atomic.Int64
}

func (c *cancelAfter) Evaluate(a transform.Assignment) *search.Evaluation {
	ev := c.inner.Evaluate(a)
	if c.n.Add(1) == c.after {
		c.cancel()
	}
	return ev
}

// TestCancelResumeByteIdentical is the acceptance test for deadline-
// aware tuning: a tune cancelled after ANY number of evaluations leaves
// a valid journal that -resume completes byte-identically to an
// uninterrupted run — at serial and at batch parallelism, where the
// cancellation lands nondeterministically relative to in-flight
// siblings.
func TestCancelResumeByteIdentical(t *testing.T) {
	for _, par := range []int{1, 8} {
		par := par
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			dir := t.TempDir()
			refPath := filepath.Join(dir, "ref.jsonl")
			res, err, fault := runJournaled(t, Options{Seed: 1, Parallelism: par, JournalPath: refPath})
			if err != nil || fault != nil {
				t.Fatalf("reference run: err=%v fault=%v", err, fault)
			}
			refBytes, err := os.ReadFile(refPath)
			if err != nil {
				t.Fatal(err)
			}
			total := len(res.Outcome.Log.Evals)
			refMin := fmt.Sprint(res.Outcome.Minimal)

			tried := map[int]bool{}
			for _, stop := range []int{1, 2, total / 2, total - 1} {
				if stop < 1 || tried[stop] {
					continue
				}
				tried[stop] = true
				path := filepath.Join(dir, fmt.Sprintf("stop%d.jsonl", stop))
				ctx, cancel := context.WithCancel(context.Background())
				tn, err := New(models.Funarc(), Options{
					Seed: 1, Parallelism: par, JournalPath: path,
					WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
						return &cancelAfter{inner: inner, cancel: cancel, after: int64(stop)}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				resC, errC := tn.Run(ctx)
				cancel()
				if errC == nil {
					// Everything still needed was already in flight when the
					// stop landed (possible at high parallelism near the end):
					// the run finished, and its journal must be complete.
					if par == 1 {
						t.Fatalf("stop=%d: serial run outran its own cancellation", stop)
					}
					if got, _ := os.ReadFile(path); string(got) != string(refBytes) {
						t.Errorf("stop=%d: completed journal differs from reference", stop)
					}
					continue
				}
				var ce *search.Cancelled
				if !errors.As(errC, &ce) {
					t.Fatalf("stop=%d: Run error %v (%T), want *search.Cancelled", stop, errC, errC)
				}
				if resC == nil || resC.Cancelled == nil {
					t.Fatalf("stop=%d: cancelled run carries no partial result", stop)
				}
				if resC.Outcome.Converged {
					t.Errorf("stop=%d: cancelled run claims convergence", stop)
				}
				// The stop is recorded in the events sidecar, never the
				// journal proper.
				if _, evs, err := journal.InspectEvents(journal.EventsPath(path)); err != nil {
					t.Errorf("stop=%d: events sidecar unreadable: %v", stop, err)
				} else {
					found := false
					for _, e := range evs {
						if e.Type == journal.EventCancelled {
							found = true
						}
					}
					if !found {
						t.Errorf("stop=%d: no cancelled record in the events sidecar", stop)
					}
				}
				// No Done checkpoint: the search is not finished.
				if ck, ok, err := journal.LoadCheckpoint(journal.CheckpointPath(path)); err == nil && ok && ck.Done {
					t.Errorf("stop=%d: cancelled run wrote a Done checkpoint", stop)
				}

				res2, err2, fault := runJournaled(t, Options{Seed: 1, Parallelism: par, JournalPath: path, Resume: true})
				if err2 != nil || fault != nil {
					t.Fatalf("stop=%d: resume failed: err=%v fault=%v", stop, err2, fault)
				}
				gotBytes, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if string(gotBytes) != string(refBytes) {
					t.Errorf("stop=%d: resumed journal differs from uninterrupted journal (%d vs %d bytes)",
						stop, len(gotBytes), len(refBytes))
				}
				if got := fmt.Sprint(res2.Outcome.Minimal); got != refMin {
					t.Errorf("stop=%d: minimal %s, want %s", stop, got, refMin)
				}
				if len(res2.Outcome.Log.Evals) != total {
					t.Errorf("stop=%d: resumed log holds %d evals, want %d", stop, len(res2.Outcome.Log.Evals), total)
				}
			}
		})
	}
}

// TestPreCancelledContext: a context that is already done stops the
// run before any evaluation — including with a DrainGrace hard-cancel
// layer armed — and the empty journal resumes to a complete run.
func TestPreCancelledContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tn, err := New(models.Funarc(), Options{Seed: 1, JournalPath: path, DrainGrace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run(ctx)
	var ce *search.Cancelled
	if !errors.As(err, &ce) {
		t.Fatalf("Run error %v (%T), want *search.Cancelled", err, err)
	}
	if n := len(res.Outcome.Log.Evals); n != 0 {
		t.Errorf("pre-cancelled run evaluated %d variants, want 0", n)
	}
	res2, err2, fault := runJournaled(t, Options{Seed: 1, JournalPath: path, Resume: true})
	if err2 != nil || fault != nil {
		t.Fatalf("resume: err=%v fault=%v", err2, fault)
	}
	if !res2.Outcome.Converged {
		t.Error("resumed run did not converge")
	}
	ck, ok, err := journal.LoadCheckpoint(journal.CheckpointPath(path))
	if err != nil || !ok || !ck.Done {
		t.Errorf("final checkpoint = %+v, %v, %v; want Done", ck, ok, err)
	}
}

// hangFirst wedges the very first inner evaluation until released —
// a worker that neither returns nor dies.
type hangFirst struct {
	inner   search.Evaluator
	release chan struct{}
	first   atomic.Bool
}

func (h *hangFirst) Evaluate(a transform.Assignment) *search.Evaluation {
	if h.first.CompareAndSwap(false, true) {
		<-h.release
	}
	return h.inner.Evaluate(a)
}

// TestWatchdogUnblocksBatch: a hung evaluation no longer blocks its
// batch — the watchdog abandons the wedged attempt, the retry
// succeeds, the search completes, the hang is recorded only in the
// events sidecar, and the journal is byte-identical to an undisturbed
// run's.
func TestWatchdogUnblocksBatch(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, Parallelism: 8, JournalPath: refPath}); err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	path := filepath.Join(dir, "hung.jsonl")
	// The watchdog is generous so only the deliberately wedged attempt
	// trips it: a spurious timeout on a merely slow evaluation would
	// retry it (harmless — evaluations are pure), but three in a row
	// would quarantine it and divert the search.
	res, err, fault := runJournaled(t, Options{
		Seed: 1, Parallelism: 8, JournalPath: path,
		Retries: 2, Watchdog: 2 * time.Second, RetryBackoff: time.Nanosecond,
		WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
			return &hangFirst{inner: inner, release: release}
		},
	})
	if err != nil || fault != nil {
		t.Fatalf("watchdogged run: err=%v fault=%v", err, fault)
	}
	if res.Resilience == nil || res.Resilience.Hung < 1 {
		t.Fatalf("resilience stats = %+v, want at least one abandoned attempt", res.Resilience)
	}
	if res.Resilience.Quarantined != 0 {
		t.Fatalf("resilience stats = %+v, want no quarantines", res.Resilience)
	}
	gotBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(refBytes) {
		t.Errorf("journal with a ridden-out hang differs from the undisturbed journal (%d vs %d bytes)",
			len(gotBytes), len(refBytes))
	}
	_, evs, err := journal.InspectEvents(journal.EventsPath(path))
	if err != nil {
		t.Fatal(err)
	}
	sawWatchdog := false
	for _, e := range evs {
		if e.Type == string(journal.EventWatchdog) {
			sawWatchdog = true
			if e.Kind != "hang" {
				t.Errorf("watchdog event kind = %q, want hang", e.Kind)
			}
		}
	}
	if !sawWatchdog {
		t.Error("no watchdog record in the events sidecar")
	}
}

// poisonKeys panics persistently on a fixed set of assignment keys.
// Poisoning by key (not arrival index) keeps the injected quarantines
// identical across runs regardless of worker scheduling — batch workers
// may acquire their slots out of spawn order.
type poisonKeys struct {
	inner search.Evaluator
	keys  map[string]bool
}

func (p *poisonKeys) Evaluate(a transform.Assignment) *search.Evaluation {
	if p.keys[a.Key()] {
		panic(fmt.Sprintf("injected: node lost evaluating %s", a.Key()))
	}
	return p.inner.Evaluate(a)
}

// TestHalfOpenBreakerJournalEquivalent: a search that rides out an open
// half-open breaker (probe succeeds, search resumes) produces the same
// journal as one whose breaker never engaged — the breaker changes
// pacing, never results.
func TestHalfOpenBreakerJournalEquivalent(t *testing.T) {
	dir := t.TempDir()
	// Poison two fail-status variants from a clean reference run: their
	// outcomes never steered the search, so both poisoned runs propose
	// the same evaluation stream and quarantine the same two keys.
	pick, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: filepath.Join(dir, "pick.jsonl")})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	poison := map[string]bool{}
	for _, ev := range pick.Outcome.Log.Evals {
		if len(poison) == 2 {
			break
		}
		if ev.Status == search.StatusFail && ev.Assignment != nil {
			poison[ev.Assignment.Key()] = true
		}
	}
	if len(poison) != 2 {
		t.Fatalf("reference run offers %d distinct fail-status variants to poison, want 2", len(poison))
	}
	wrap := func(inner search.Evaluator) search.Evaluator {
		return &poisonKeys{inner: inner, keys: poison}
	}

	refPath := filepath.Join(dir, "nobreaker.jsonl")
	refRes, err, fault := runJournaled(t, Options{
		Seed: 1, Parallelism: 1, JournalPath: refPath,
		Retries: 0, MaxQuarantined: 10, RetryBackoff: time.Nanosecond,
		WrapEvaluator: wrap,
	})
	if err != nil || fault != nil {
		t.Fatalf("breakerless run: err=%v fault=%v", err, fault)
	}
	if refRes.Resilience.Quarantined != 2 {
		t.Fatalf("breakerless run quarantined %d, want 2", refRes.Resilience.Quarantined)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "halfopen.jsonl")
	res, err, fault := runJournaled(t, Options{
		Seed: 1, Parallelism: 1, JournalPath: path,
		Retries: 0, Breaker: 1, HalfOpen: true, RetryBackoff: time.Nanosecond,
		WrapEvaluator: wrap,
	})
	if err != nil || fault != nil {
		t.Fatalf("half-open run: err=%v fault=%v", err, fault)
	}
	st := res.Resilience
	if st.BreakerTripped {
		t.Error("a ridden-out breaker must not count as tripped")
	}
	if st.Quarantined != 2 {
		t.Errorf("half-open run quarantined %d, want 2", st.Quarantined)
	}
	// Scheduling may make the second poisoned key the probe itself (a
	// failed probe that keeps the breaker open for the next waiter), so
	// pin the invariant rather than an exact trace: every probe either
	// closed the breaker or counted as failed, and the breaker closed
	// at least once.
	if st.BreakerClosed < 1 || st.Probes != st.BreakerClosed+st.FailedProbes {
		t.Errorf("stats = %+v: every probe must close the breaker or count as failed", st)
	}
	gotBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(refBytes) {
		t.Errorf("half-open journal differs from breakerless journal (%d vs %d bytes)",
			len(gotBytes), len(refBytes))
	}
	_, evs, err := journal.InspectEvents(journal.EventsPath(path))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range evs {
		counts[e.Type]++
	}
	open := counts[string(journal.EventBreakerOpen)]
	probe := counts[string(journal.EventBreakerProbe)]
	closed := counts[string(journal.EventBreakerClose)]
	if open < 1 || open != closed || int64(probe) != int64(closed)+st.FailedProbes {
		t.Errorf("sidecar event counts = %v (stats %+v), want matched open/probe/close cycles", counts, st)
	}
}
