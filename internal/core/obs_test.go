package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/search"
)

// TestTracingDoesNotPerturbJournal is the observability acceptance
// test: a tune run with the span tracer and metrics registry attached
// writes an evaluation journal BYTE-IDENTICAL to a run without them.
// Observability is strictly out-of-band — it is not fingerprinted and
// must never leak into the deterministic record.
func TestTracingDoesNotPerturbJournal(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath}); err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	tracedPath := filepath.Join(dir, "traced.jsonl")
	tracer := obs.NewTracer("model=funarc seed=1")
	if _, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: tracedPath,
		Trace: tracer, Metrics: obs.NewRegistry(),
	}); err != nil || fault != nil {
		t.Fatalf("traced run: err=%v fault=%v", err, fault)
	}
	tracedBytes, err := os.ReadFile(tracedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(tracedBytes) != string(refBytes) {
		t.Errorf("traced journal differs from untraced journal (%d vs %d bytes)",
			len(tracedBytes), len(refBytes))
	}
	if tracer.Len() == 0 {
		t.Error("traced run recorded no spans — the test is vacuous")
	}
}

// TestTraceSpanCountsMatchJournal reconciles the trace against the
// journal on a fresh, fault-free run: one eval span per journaled
// record, one journal.append span per record, and no retry spans.
func TestTraceSpanCountsMatchJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	tracer := obs.NewTracer("model=funarc seed=1")
	if _, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, Trace: tracer, Metrics: obs.NewRegistry(),
	}); err != nil || fault != nil {
		t.Fatalf("run: err=%v fault=%v", err, fault)
	}
	_, recs, err := journal.Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := obs.CountByName(tracer.Records())
	if counts[obs.SpanEval] != len(recs) {
		t.Errorf("eval spans = %d, journal records = %d", counts[obs.SpanEval], len(recs))
	}
	if counts[obs.SpanJournalAppend] != len(recs) {
		t.Errorf("journal.append spans = %d, journal records = %d", counts[obs.SpanJournalAppend], len(recs))
	}
	if counts[obs.SpanInterpRun] != len(recs) {
		t.Errorf("interp.run spans = %d, journal records = %d", counts[obs.SpanInterpRun], len(recs))
	}
	if counts[obs.SpanRetry] != 0 {
		t.Errorf("fault-free run emitted %d retry spans", counts[obs.SpanRetry])
	}
	if counts[obs.SpanTune] != 1 {
		t.Errorf("tune spans = %d, want 1", counts[obs.SpanTune])
	}
}

// TestTraceRetrySpansMatchSidecar injects transient faults and checks
// the reconciliation under retries: the eval span count still equals
// the journal record count (retries happen inside one eval span), and
// the retry span count equals the retry events in the sidecar.
func TestTraceRetrySpansMatchSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	tracer := obs.NewTracer("model=funarc seed=1")
	reg := obs.NewRegistry()
	res, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, Trace: tracer, Metrics: reg,
		Retries: 8, RetryBackoff: 1,
		WrapEvaluator: func(inner search.Evaluator) search.Evaluator {
			return &search.FaultInjector{Inner: inner, Mode: search.FaultFlaky, Rate: 0.3, Seed: 7}
		},
	})
	if err != nil || fault != nil {
		t.Fatalf("flaky run: err=%v fault=%v", err, fault)
	}
	if res.Resilience == nil || res.Resilience.Retried == 0 {
		t.Fatal("no retries happened — the test is vacuous")
	}
	_, recs, err := journal.Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	_, evs, err := journal.InspectEvents(journal.EventsPath(path))
	if err != nil {
		t.Fatal(err)
	}
	retryEvents := 0
	for _, e := range evs {
		if e.Type == journal.EventRetry {
			retryEvents++
		}
	}
	counts := obs.CountByName(tracer.Records())
	if counts[obs.SpanEval] != len(recs) {
		t.Errorf("eval spans = %d, journal records = %d", counts[obs.SpanEval], len(recs))
	}
	if counts[obs.SpanRetry] != retryEvents {
		t.Errorf("retry spans = %d, retry events in sidecar = %d", counts[obs.SpanRetry], retryEvents)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MetricRetries] != int64(retryEvents) {
		t.Errorf("retries counter = %d, retry events = %d", snap.Counters[obs.MetricRetries], retryEvents)
	}
}

// TestParallelTraceDeterministicJournal runs the tune at parallelism 8
// with tracing on: spans are emitted from 8 concurrent workers (the
// race detector covers this in CI), the journal still matches the
// serial untraced reference, and the eval spans still reconcile.
func TestParallelTraceDeterministicJournal(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath}); err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	parPath := filepath.Join(dir, "par.jsonl")
	tracer := obs.NewTracer("model=funarc seed=1")
	if _, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: parPath, Parallelism: 8,
		Trace: tracer, Metrics: obs.NewRegistry(),
	}); err != nil || fault != nil {
		t.Fatalf("parallel traced run: err=%v fault=%v", err, fault)
	}
	parBytes, err := os.ReadFile(parPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(parBytes) != string(refBytes) {
		t.Errorf("par-8 traced journal differs from serial untraced journal (%d vs %d bytes)",
			len(parBytes), len(refBytes))
	}
	_, recs, err := journal.Inspect(parPath)
	if err != nil {
		t.Fatal(err)
	}
	if counts := obs.CountByName(tracer.Records()); counts[obs.SpanEval] != len(recs) {
		t.Errorf("eval spans = %d, journal records = %d", counts[obs.SpanEval], len(recs))
	}
}

// TestMetricsSnapshotInReport checks that a run with a registry
// attached carries a final snapshot into the Result and renders it in
// the report, with the evals counter agreeing with the evaluation log.
func TestMetricsSnapshotInReport(t *testing.T) {
	res, err, fault := runJournaled(t, Options{Seed: 1, Metrics: obs.NewRegistry()})
	if err != nil || fault != nil {
		t.Fatalf("run: err=%v fault=%v", err, fault)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics is nil on a run with a registry")
	}
	if got, want := res.Metrics.Counters[obs.MetricEvals], int64(len(res.Outcome.Log.Evals)); got != want {
		t.Errorf("evals counter = %d, evaluation log has %d", got, want)
	}
	report := res.Render()
	if !strings.Contains(report, "metrics:") {
		t.Errorf("report does not contain a metrics section:\n%s", report)
	}
	if !strings.Contains(report, "evals") {
		t.Errorf("report metrics section does not mention evals:\n%s", report)
	}

	// Without a registry the report must not change.
	plain, err, fault := runJournaled(t, Options{Seed: 1})
	if err != nil || fault != nil {
		t.Fatalf("plain run: err=%v fault=%v", err, fault)
	}
	if plain.Metrics != nil {
		t.Error("Result.Metrics is non-nil on a run without a registry")
	}
	if strings.Contains(plain.Render(), "metrics:") {
		t.Error("plain report grew a metrics section")
	}
}
