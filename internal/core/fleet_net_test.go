package core

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/models"
	"repro/internal/obs"
)

// TestFleetNetChaosJournalByteIdentity is PR 8's headline invariant,
// the network edition of TestFleetJournalByteIdentity: a tune whose
// workers dial in over TCP — through a deterministically seeded chaos
// layer injecting latency, drops, duplicates, reorders, and hard
// partition windows — produces an evaluation journal byte-identical to
// the fault-free in-process run's, at pool size 1 and 8. The chaos is
// visible only in the events sidecar (worker_reconnect,
// partition_expired, dup_refused) and the fleet stats; it never
// reaches an outcome.
//
// Like the pipe-fleet edition, the chaos runs enable the distributed
// observability plane (trace context in lease grants, spans and metric
// snapshots shipped back through the chaos layer) while the reference
// run does not: byte identity proves the shipping survives drops,
// duplicates, reorders and partitions without touching the journal.
// Span delivery itself is best-effort under chaos — a dropped
// heartbeat loses its batch — so the assertion is at-least-one, while
// the ObsSeq dedup guarantees duplicated frames never splice twice.
func TestFleetNetChaosJournalByteIdentity(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	refRes, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refMin := fmt.Sprint(refRes.Outcome.Minimal)

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			// Chaos rates tuned so every failure mode fires on funarc's
			// evaluation stream while supervised retries (budget 10)
			// absorb the partition-expired leases without a quarantine
			// (pinned by the zero-infra assertion below).
			coord, err := fleet.New(fleet.Config{
				Workers:   workers,
				Heartbeat: 50 * time.Millisecond,
				LeaseTTL:  2 * time.Second,
				// Network incidents never charge the restart budget, but
				// garbled in-flight frames during a severed write can;
				// give the chaos run the same headroom as the kill test.
				MaxRestarts:    100,
				RestartBackoff: 20 * time.Millisecond,
				Net: &fleet.NetConfig{
					Listener: ln,
					Chaos: &fleet.ChaosConfig{
						Seed:         7,
						Drop:         0.05,
						Dup:          0.05,
						Reorder:      0.03,
						Partition:    0.04,
						PartitionFor: 150 * time.Millisecond,
						Delay:        time.Millisecond,
					},
				},
			})
			if err != nil {
				t.Fatal(err)
			}

			// Real tuner workers, dialing in like `prose worker -connect`
			// — in-process goroutines so the test stays hermetic, but on
			// the production ServeNet loop over real TCP connections.
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				tuner, err := New(models.Funarc(), Options{Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					fleet.ServeNet(fleet.NetServeConfig{
						Addr:               ln.Addr().String(),
						Eval:               tuner,
						Fingerprint:        tuner.Fingerprint(),
						Session:            fmt.Sprintf("w%d", i),
						Heartbeat:          50 * time.Millisecond,
						HeartbeatMissLimit: 3,
						SendTimeout:        2 * time.Second,
						DialTimeout:        2 * time.Second,
						ReconnectBackoff:   20 * time.Millisecond,
						MaxDials:           50,
					})
				}(i)
			}

			path := filepath.Join(dir, fmt.Sprintf("net%d.jsonl", workers))
			tracer := obs.NewTracer("fleet-net-byte-identity")
			reg := obs.NewRegistry()
			res, err, fault := runJournaled(t, Options{
				Seed: 1, JournalPath: path,
				Parallelism: workers, Fleet: coord,
				Retries: 10,
				Trace:   tracer, Metrics: reg,
			})
			if err != nil || fault != nil {
				t.Fatalf("network fleet run: err=%v fault=%v", err, fault)
			}
			wg.Wait()

			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refBytes) {
				t.Errorf("network-chaos journal differs from the fault-free in-process journal")
			}
			if min := fmt.Sprint(res.Outcome.Minimal); min != refMin {
				t.Errorf("minimal set %s, want %s", min, refMin)
			}
			if res.Fleet == nil {
				t.Fatal("Result.Fleet not populated")
			}
			if res.Fleet.Degraded {
				t.Errorf("fleet degraded under chaos: %s", res.Fleet.DegradeDetail)
			}
			// Chaos must cost only retries and reconnects, never
			// outcomes: a quarantine would surface as a StatusInfra
			// record and break byte identity.
			if n := res.Outcome.Log.InfraCount(); n != 0 {
				t.Errorf("%d quarantined assignment(s); want 0", n)
			}
			// The chaos left a trace: at least one network incident in
			// the stats and its event in the sidecar. (Which kinds fire
			// depends on where the seeded windows land relative to the
			// lease stream, so the assertion is on the sum.)
			incidents := res.Fleet.Reconnects + res.Fleet.PartitionExpired + res.Fleet.DupRefused
			if incidents == 0 {
				t.Errorf("no network incidents recorded; the chaos injection did not fire: %+v", res.Fleet)
			}
			_, evs, err := journal.InspectEvents(journal.EventsPath(path))
			if err != nil {
				t.Fatal(err)
			}
			var netEvents int
			for _, e := range evs {
				switch e.Type {
				case fleet.EventWorkerReconnect, fleet.EventPartitionExpired, fleet.EventDupRefused:
					netEvents++
				}
			}
			if netEvents == 0 {
				t.Error("no network events in the sidecar")
			}
			// And in the report.
			if rep := res.Render(); !strings.Contains(rep, "fleet network:") {
				t.Errorf("report lacks the fleet network line:\n%s", rep)
			}
			// Worker spans made it through the chaos layer into their pid
			// lanes (best-effort: at least one survives the drop rate).
			var workerSpans int
			for _, r := range tracer.Drain() {
				if r.Name == obs.SpanWorkerEval {
					if r.PID < obs.WorkerPIDBase || r.PID >= obs.WorkerPIDBase+workers {
						t.Errorf("worker.eval span in pid lane %d; want [%d,%d)",
							r.PID, obs.WorkerPIDBase, obs.WorkerPIDBase+workers)
					}
					workerSpans++
				}
			}
			if workerSpans == 0 {
				t.Error("no worker.eval spans spliced into the coordinator trace")
			}
			// Worker metric snapshots merged despite duplicated and
			// reordered frames; the cumulative-snapshot + ObsSeq design
			// makes the final merged counts exact, not best-effort.
			snap := reg.Snapshot()
			h, ok := snap.Histograms[obs.MetricFleetWorkersPrefix+obs.HistEvalRunNS]
			if !ok || h.Count == 0 {
				t.Errorf("merged worker histogram %s%s missing or empty",
					obs.MetricFleetWorkersPrefix, obs.HistEvalRunNS)
			}
		})
	}
}
