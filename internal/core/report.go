package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/search"
)

// TableRow is one model's row of the paper's Table II.
type TableRow struct {
	Model       string
	Total       int
	PassPct     float64
	FailPct     float64
	TimeoutPct  float64
	ErrorPct    float64
	BestSpeedup float64 // speedup of the optimal (passing) variant
	Converged   bool
}

// TableIIRow summarizes the run in Table II form.
func (r *Result) TableIIRow() TableRow {
	total, pass, fail, timeout, errs := r.Outcome.Log.Counts()
	row := TableRow{
		Model:     r.Model.Name,
		Total:     total,
		Converged: r.Outcome.Converged,
	}
	if total > 0 {
		row.PassPct = 100 * float64(pass) / float64(total)
		row.FailPct = 100 * float64(fail) / float64(total)
		row.TimeoutPct = 100 * float64(timeout) / float64(total)
		row.ErrorPct = 100 * float64(errs) / float64(total)
	}
	// The paper's Table II reports the speedup of the best *correct*
	// variant; for MOM6 no correct variant beat the baseline, yet the
	// table still lists 1.04x — so the column drops the MinSpeedup
	// criterion.
	if best := r.Outcome.Log.Best(search.Criteria{MaxRelError: r.Criteria.MaxRelError}); best != nil {
		row.BestSpeedup = best.Speedup
	}
	return row
}

// Best returns the accepted evaluation with the highest speedup, or nil.
func (r *Result) Best() *search.Evaluation {
	return r.Outcome.Log.Best(r.Criteria)
}

// SortedProcVariants returns the Fig. 6 points for proc, sorted by
// discovery order.
func (r *Result) SortedProcVariants(proc string) []ProcPoint {
	pts := append([]ProcPoint(nil), r.ProcVariants[proc]...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].FromIndex < pts[j].FromIndex })
	return pts
}

// ProcNames returns the hotspot procedures with recorded variants,
// sorted by descending baseline share (number of points as tiebreak).
func (r *Result) ProcNames() []string {
	names := make([]string, 0, len(r.ProcVariants))
	for q := range r.ProcVariants {
		names = append(names, q)
	}
	sort.Strings(names)
	return names
}

// Render produces a human-readable summary of the tuning run.
func (r *Result) Render() string {
	var sb strings.Builder
	row := r.TableIIRow()
	fmt.Fprintf(&sb, "model %s (%s)\n", r.Model.Name, r.Model.Description)
	fmt.Fprintf(&sb, "  search atoms: %d (hotspot module %s)\n", r.Baseline.AtomCount, r.Model.Hotspot)
	fmt.Fprintf(&sb, "  baseline: %.0f cycles total, hotspot share %.1f%%\n",
		r.Baseline.TotalCycles, 100*r.Baseline.HotspotShare)
	fmt.Fprintf(&sb, "  correctness: %s, threshold %.3e\n", r.Model.MetricName, r.Baseline.Threshold)
	fmt.Fprintf(&sb, "  variants explored: %d  (pass %.1f%%  fail %.1f%%  timeout %.1f%%  error %.1f%%)\n",
		row.Total, row.PassPct, row.FailPct, row.TimeoutPct, row.ErrorPct)
	if !row.Converged {
		fmt.Fprintf(&sb, "  search did NOT converge within the evaluation budget\n")
	}
	if n := r.Outcome.Log.InfraCount(); n > 0 {
		fmt.Fprintf(&sb, "  infrastructure failures: %d assignment(s) quarantined (outcome unknown, excluded from the percentages above)\n", n)
	}
	if st := r.Resilience; st != nil && (st.Retried > 0 || st.Quarantined > 0 || st.BreakerTripped) {
		fmt.Fprintf(&sb, "  resilience: %d attempt(s) for %d evaluation(s), %d retried, %d recovered, %d quarantined\n",
			st.Attempts, st.Evaluations, st.Retried, st.Recovered, st.Quarantined)
	}
	if st := r.Resilience; st != nil && st.Hung > 0 {
		fmt.Fprintf(&sb, "  watchdog: %d hung attempt(s) abandoned\n", st.Hung)
	}
	if st := r.Resilience; st != nil && st.Probes > 0 {
		fmt.Fprintf(&sb, "  breaker probes: %d (%d failed, breaker closed %d time(s))\n",
			st.Probes, st.FailedProbes, st.BreakerClosed)
	}
	if r.Salvaged > 0 {
		fmt.Fprintf(&sb, "  salvaged: %d evaluation(s) recovered from the aborted prior run's sidecar\n", r.Salvaged)
	}
	if st := r.Fleet; st != nil {
		fmt.Fprintf(&sb, "  fleet: %d worker(s) (%d alive at end), %d lease(s), %d expired, %d late result(s) dropped, %d worker death(s), %d restart(s)\n",
			st.Workers, st.Alive, st.Leases, st.Expired, st.Late, st.Exits, st.Restarts)
		if st.Reconnects > 0 || st.PartitionExpired > 0 || st.DupRefused > 0 || st.FrameErrors > 0 {
			fmt.Fprintf(&sb, "  fleet network: %d reconnect(s), %d partition-expired lease(s), %d duplicate frame(s) refused, %d frame error(s)\n",
				st.Reconnects, st.PartitionExpired, st.DupRefused, st.FrameErrors)
		}
		if st.Degraded {
			fmt.Fprintf(&sb, "  fleet DEGRADED to in-process evaluation (%d local eval(s)): %s\n",
				st.LocalEvals, st.DegradeDetail)
		}
	}
	if r.Aborted != nil {
		fmt.Fprintf(&sb, "  PARTIAL RESULT: search aborted early — %s\n", r.Aborted.Reason)
	}
	if r.Cancelled != nil {
		fmt.Fprintf(&sb, "  PARTIAL RESULT: run cancelled (%v) — resume with the same journal to finish\n", r.Cancelled.Err)
	}
	if best := r.Best(); best != nil {
		fmt.Fprintf(&sb, "  best passing variant: %.2fx speedup, %.3e error, %d/%d atoms lowered\n",
			best.Speedup, best.RelError, best.Lowered, best.TotalAtoms)
	} else {
		fmt.Fprintf(&sb, "  no passing variant found\n")
	}
	if len(r.Outcome.Minimal) > 0 && len(r.Outcome.Minimal) <= 12 {
		min := append([]string(nil), r.Outcome.Minimal...)
		sort.Strings(min)
		fmt.Fprintf(&sb, "  1-minimal 64-bit set (%d): %s\n", len(min), strings.Join(min, ", "))
	} else {
		fmt.Fprintf(&sb, "  1-minimal 64-bit set: %d atoms\n", len(r.Outcome.Minimal))
	}
	if r.Metrics != nil {
		fmt.Fprintf(&sb, "  metrics:\n%s", r.Metrics.Render("    "))
	}
	return sb.String()
}
