package core

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/models"
	"repro/internal/obs"
)

// TestMain doubles as the fleet worker executable: the fleet tests
// re-exec this test binary with FLEET_TUNER_WORKER=1, and the worker
// runs a real funarc tuner behind the production fleet.Serve loop — so
// the byte-identity test below exercises the exact stack `prose tune
// -workers` ships: subprocess spawn, JSONL pipes, fingerprint
// handshake, heartbeats, SIGKILLed workers, lease reassignment.
func TestMain(m *testing.M) {
	if os.Getenv("FLEET_TUNER_WORKER") == "1" {
		if err := runTunerWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "tuner worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runTunerWorker() error {
	t, err := New(models.Funarc(), Options{Seed: 1})
	if err != nil {
		return err
	}
	faults := fleet.WorkerFaults{WedgeKey: os.Getenv("FLEET_TUNER_WEDGE_KEY")}
	if v := os.Getenv("FLEET_TUNER_KILL_RATE"); v != "" {
		faults.KillRate, _ = strconv.ParseFloat(v, 64)
	}
	if v := os.Getenv("FLEET_TUNER_SEED"); v != "" {
		faults.Seed, _ = strconv.ParseInt(v, 10, 64)
	}
	hb := 50 * time.Millisecond
	return fleet.Serve(fleet.ServeConfig{
		Transport:   fleet.NewPipeTransport(os.Stdin, os.Stdout),
		Eval:        t,
		Fingerprint: t.Fingerprint(),
		Heartbeat:   hb,
		Fault:       faults,
	})
}

// tunerSpawn re-execs the test binary as a real-tuner worker.
func tunerSpawn(extra ...string) fleet.SpawnFunc {
	return func(id int) (fleet.Transport, fleet.Process, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(), "FLEET_TUNER_WORKER=1")
		cmd.Env = append(cmd.Env, extra...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, err
		}
		return fleet.NewPipeTransport(stdout, stdin), &testProc{cmd}, nil
	}
}

type testProc struct{ cmd *exec.Cmd }

func (p *testProc) Kill() error {
	if p.cmd.Process == nil {
		return nil
	}
	return p.cmd.Process.Kill()
}
func (p *testProc) Wait() error { return p.cmd.Wait() }
func (p *testProc) Pid() int {
	if p.cmd.Process == nil {
		return 0
	}
	return p.cmd.Process.Pid
}

func newFleet(t *testing.T, workers int, env ...string) *fleet.Coordinator {
	t.Helper()
	coord, err := fleet.New(fleet.Config{
		Workers:   workers,
		Spawn:     tunerSpawn(env...),
		Heartbeat: 50 * time.Millisecond,
		// With one worker, every injected death lands on the same slot;
		// give it headroom so routine kills never retire the pool.
		MaxRestarts:    100,
		RestartBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestFleetJournalByteIdentity is the fleet's acceptance test and the
// ISSUE's headline invariant: a tune whose worker subprocesses are
// SIGKILLed at random produces an evaluation journal byte-identical to
// the fault-free in-process run's — at pool size 1 and 8 — with the
// deaths visible only in the events sidecar and the fleet stats.
//
// The fleet runs enable the full distributed observability plane
// (coordinator tracer + registry, so lease grants propagate trace
// context and workers ship spans and metric snapshots back) while the
// reference run enables none of it: byte identity against the
// uninstrumented journal proves trace and metric shipping are strictly
// out-of-band.
func TestFleetJournalByteIdentity(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	refRes, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refMin := fmt.Sprint(refRes.Outcome.Minimal)

	// Kill-rate/seed chosen to produce several worker deaths on funarc's
	// evaluation stream without exhausting any per-key retry budget
	// (verified by the zero-quarantine assertion below).
	faultEnv := []string{"FLEET_TUNER_KILL_RATE=0.15", "FLEET_TUNER_SEED=7"}

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("fleet%d.jsonl", workers))
			coord := newFleet(t, workers, faultEnv...)
			tracer := obs.NewTracer("fleet-byte-identity")
			reg := obs.NewRegistry()
			res, err, fault := runJournaled(t, Options{
				Seed: 1, JournalPath: path,
				Parallelism: workers, Fleet: coord,
				Trace: tracer, Metrics: reg,
			})
			if err != nil || fault != nil {
				t.Fatalf("fleet run: err=%v fault=%v", err, fault)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refBytes) {
				t.Errorf("fleet journal differs from the fault-free in-process journal")
			}
			if min := fmt.Sprint(res.Outcome.Minimal); min != refMin {
				t.Errorf("minimal set %s, want %s", min, refMin)
			}
			if res.Fleet == nil {
				t.Fatal("Result.Fleet not populated")
			}
			if res.Fleet.Exits == 0 {
				t.Errorf("no worker deaths recorded; the fault injection did not fire")
			}
			if res.Fleet.Degraded {
				t.Errorf("fleet degraded: %s", res.Fleet.DegradeDetail)
			}
			// Worker deaths must cost only retries, never outcomes: a
			// quarantine would surface as a StatusInfra journal record and
			// break byte identity.
			if n := res.Outcome.Log.InfraCount(); n != 0 {
				t.Errorf("%d quarantined assignment(s); want 0", n)
			}
			// The deaths are visible in the sidecar — and only there.
			_, evs, err := journal.InspectEvents(journal.EventsPath(path))
			if err != nil {
				t.Fatal(err)
			}
			var exits, grants int
			for _, e := range evs {
				switch e.Type {
				case fleet.EventWorkerExit, fleet.EventWorkerLost:
					exits++
					if e.WorkerID() < 0 || e.WorkerID() >= workers {
						t.Errorf("exit event names worker %d of %d", e.WorkerID(), workers)
					}
				case fleet.EventLeaseGrant:
					grants++
				}
			}
			if exits == 0 || grants == 0 {
				t.Errorf("sidecar: %d worker_exit, %d lease_grant; want both > 0", exits, grants)
			}
			// And in the report.
			if rep := res.Render(); !strings.Contains(rep, "fleet:") {
				t.Errorf("report lacks the fleet line:\n%s", rep)
			}
			// Worker spans were shipped back, rebased, and spliced into
			// the coordinator's trace in their own pid lanes.
			var workerSpans int
			for _, r := range tracer.Drain() {
				if r.Name == obs.SpanWorkerEval {
					if r.PID < obs.WorkerPIDBase || r.PID >= obs.WorkerPIDBase+workers {
						t.Errorf("worker.eval span in pid lane %d; want [%d,%d)",
							r.PID, obs.WorkerPIDBase, obs.WorkerPIDBase+workers)
					}
					workerSpans++
				}
			}
			if workerSpans == 0 {
				t.Error("no worker.eval spans spliced into the coordinator trace")
			}
			// Worker registries were merged under fleet.workers.*.
			snap := reg.Snapshot()
			if n := snap.Counters[obs.MetricFleetObsSpans]; n == 0 {
				t.Error("fleet_obs_spans counter is zero; span shipping never counted")
			}
			h, ok := snap.Histograms[obs.MetricFleetWorkersPrefix+obs.HistEvalRunNS]
			if !ok || h.Count == 0 {
				t.Errorf("merged worker histogram %s%s missing or empty",
					obs.MetricFleetWorkersPrefix, obs.HistEvalRunNS)
			}
			if res.Metrics == nil || res.Metrics.Counters[obs.MetricFleetObsSnapshots] == 0 {
				t.Error("Result.Metrics lacks the merged fleet_obs_snapshots counter")
			}
		})
	}
}

// TestFleetDegradeFallsBackInProcess: when every spawn fails, the
// coordinator degrades to in-process evaluation — loudly (sidecar event,
// stats) but harmlessly: the journal still matches the fault-free run.
func TestFleetDegradeFallsBackInProcess(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	if _, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath}); err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := fleet.New(fleet.Config{
		Workers: 2,
		Spawn: func(id int) (fleet.Transport, fleet.Process, error) {
			return nil, nil, fmt.Errorf("cluster full")
		},
		MaxRestarts:    1,
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "degraded.jsonl")
	res, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: path, Fleet: coord})
	if err != nil || fault != nil {
		t.Fatalf("degraded run: err=%v fault=%v", err, fault)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBytes) {
		t.Error("degraded-run journal differs from the fault-free journal")
	}
	if res.Fleet == nil || !res.Fleet.Degraded {
		t.Fatalf("Result.Fleet = %+v; want Degraded", res.Fleet)
	}
	if res.Fleet.LocalEvals == 0 {
		t.Error("no local evaluations counted after the degrade")
	}
	if rep := res.Render(); !strings.Contains(rep, "DEGRADED") {
		t.Errorf("report does not surface the degrade:\n%s", rep)
	}
	// The degrade left its mark in the sidecar: never silent.
	_, evs, err := journal.InspectEvents(journal.EventsPath(path))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range evs {
		if e.Type == fleet.EventDegraded {
			found = true
		}
	}
	if !found {
		t.Error("no degraded_to_local event in the sidecar")
	}
}

// TestFleetWedgedWorkerJournalIdentity drives the heartbeat-loss path
// through the full tuner: one evaluation wedges its worker (heartbeats
// stop), the coordinator kills and replaces it, and the journal still
// matches the fault-free run.
func TestFleetWedgedWorkerJournalIdentity(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	refRes, err, fault := runJournaled(t, Options{Seed: 1, JournalPath: refPath})
	if err != nil || fault != nil {
		t.Fatalf("reference run: err=%v fault=%v", err, fault)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the third evaluation of the reference stream (any journaled
	// key works; a mid-stream one exercises reassignment under load).
	recs := refRes.Outcome.Log.Evals
	if len(recs) < 3 {
		t.Fatal("reference run too short")
	}
	wedgeKey := recs[2].Assignment.Key()

	path := filepath.Join(dir, "wedge.jsonl")
	coord := newFleet(t, 2, "FLEET_TUNER_WEDGE_KEY="+wedgeKey)
	res, err, fault := runJournaled(t, Options{
		Seed: 1, JournalPath: path, Parallelism: 2, Fleet: coord,
	})
	if err != nil || fault != nil {
		t.Fatalf("wedge run: err=%v fault=%v", err, fault)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBytes) {
		t.Error("wedge-run journal differs from the fault-free journal")
	}
	if res.Fleet.Exits == 0 {
		t.Error("wedged worker was never declared lost")
	}
}
