package viz

import (
	"strings"
	"testing"
)

func TestHeatmapHTMLWellFormed(t *testing.T) {
	h := &Heatmap{
		Title:  "error heat <by> statement",
		Legend: "log scale",
		Rows: []HeatRow{
			{Name: "mod.proc", Cells: []HeatCell{
				{Label: "12", Title: "line 12 <hot>", Value: 1e-3},
				{Label: "13", Title: "line 13", Value: 1e-8},
				{Label: "14", Title: "line 14, clean", Value: 0},
			}},
			{Name: "mod.other", Cells: []HeatCell{
				{Label: "40!", Title: "catastrophic", Value: 5e-2},
			}},
		},
	}
	out := h.HTML()
	for _, want := range []string{"<table", "</table>", "mod.proc", "mod.other",
		"40!", "log scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap HTML missing %q", want)
		}
	}
	if strings.Count(out, "<td") != 4 {
		t.Errorf("want 4 cells, got %d", strings.Count(out, "<td"))
	}
	// Titles and labels must be escaped.
	if strings.Contains(out, "<hot>") || strings.Contains(out, "<by>") {
		t.Error("heatmap HTML does not escape user strings")
	}
	// The hottest cell must be darker (lower RGB) than the coolest
	// positive one, and the zero cell must stay uncolored.
	hotBG, _ := heatColor(5e-2, 1e-8, 5e-2)
	coolBG, _ := heatColor(1e-8, 1e-8, 5e-2)
	zeroBG, _ := heatColor(0, 1e-8, 5e-2)
	if hotBG == coolBG {
		t.Errorf("hot and cool cells share color %s", hotBG)
	}
	if !strings.Contains(out, hotBG) || !strings.Contains(out, coolBG) {
		t.Error("rendered HTML does not use the scale endpoint colors")
	}
	if zeroBG != "#ffffff" {
		t.Errorf("zero-value cell colored %s, want white", zeroBG)
	}
}

// TestHeatmapSingleValue pins the degenerate scale: one positive value
// must not divide by zero and should land at the hot end.
func TestHeatmapSingleValue(t *testing.T) {
	h := &Heatmap{Rows: []HeatRow{{Name: "p", Cells: []HeatCell{{Label: "1", Value: 2.5}}}}}
	out := h.HTML()
	if !strings.Contains(out, "<td") {
		t.Fatal("no cell rendered")
	}
	if strings.Contains(out, "NaN") {
		t.Error("single-value heatmap produced NaN in output")
	}
}
