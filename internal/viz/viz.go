// Package viz renders the experiment results as standalone HTML/SVG
// documents, mirroring the paper artifact's "interactive HTML
// visualizations reproducing Figures 5-7". Pure stdlib: each page embeds
// a hand-built SVG scatter with hover tooltips via <title> elements.
package viz

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// Series is one named group of points sharing a color.
type Series struct {
	Name   string
	Color  string
	Points []XY
}

// XY is one scatter point. Label becomes the hover tooltip.
type XY struct {
	X, Y  float64
	Label string
}

// Scatter describes one plot.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	YLog   bool
	Series []Series
	// HLines/VLines draw dashed reference lines (thresholds).
	HLines []float64
	VLines []float64
	Width  int
	Height int
}

const (
	marginL = 70.0
	marginR = 20.0
	marginT = 40.0
	marginB = 55.0
)

// DefaultColors cycles for unnamed series colors.
var DefaultColors = []string{"#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2"}

// SVG renders the scatter as an SVG fragment.
func (s *Scatter) SVG() string {
	w, h := s.Width, s.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 480
	}
	plotW := float64(w) - marginL - marginR
	plotH := float64(h) - marginT - marginB

	xmin, xmax, ymin, ymax := s.bounds()
	tx := func(x float64) float64 {
		return marginL + plotW*frac(x, xmin, xmax, s.XLog)
	}
	ty := func(y float64) float64 {
		return marginT + plotH*(1-frac(y, ymin, ymax, s.YLog))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	fmt.Fprintf(&sb, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&sb, `<text x="%g" y="20" font-size="15" font-weight="bold">%s</text>`,
		marginL, html.EscapeString(s.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`,
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="middle">%s</text>`,
		marginL+plotW/2, float64(h)-12, html.EscapeString(s.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`,
		marginT+plotH/2, marginT+plotH/2, html.EscapeString(s.YLabel))

	// Ticks.
	for _, t := range ticks(xmin, xmax, s.XLog) {
		x := tx(t)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#999"/>`, x, marginT+plotH, x, marginT+plotH+4)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="middle" fill="#444">%s</text>`, x, marginT+plotH+18, tickLabel(t))
	}
	for _, t := range ticks(ymin, ymax, s.YLog) {
		y := ty(t)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#999"/>`, marginL-4, y, marginL, y)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="end" fill="#444">%s</text>`, marginL-7, y+4, tickLabel(t))
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#eee"/>`, marginL, y, marginL+plotW, y)
	}

	// Reference lines.
	for _, v := range s.HLines {
		if v < ymin || v > ymax {
			continue
		}
		y := ty(v)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#888" stroke-dasharray="5,4"/>`,
			marginL, y, marginL+plotW, y)
	}
	for _, v := range s.VLines {
		if v < xmin || v > xmax {
			continue
		}
		x := tx(v)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#888" stroke-dasharray="5,4"/>`,
			x, marginT, x, marginT+plotH)
	}

	// Points.
	for si, ser := range s.Series {
		color := ser.Color
		if color == "" {
			color = DefaultColors[si%len(DefaultColors)]
		}
		for _, p := range ser.Points {
			x, y := clampCoord(p.X, xmin, xmax, s.XLog), clampCoord(p.Y, ymin, ymax, s.YLog)
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" fill-opacity="0.75"><title>%s</title></circle>`,
				tx(x), ty(y), color, html.EscapeString(p.Label))
		}
	}

	// Legend.
	lx := marginL + 10
	ly := marginT + 8.0
	for si, ser := range s.Series {
		color := ser.Color
		if color == "" {
			color = DefaultColors[si%len(DefaultColors)]
		}
		fmt.Fprintf(&sb, `<circle cx="%g" cy="%g" r="4" fill="%s"/>`, lx, ly, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" fill="#222">%s (%d)</text>`,
			lx+9, ly+4, html.EscapeString(ser.Name), len(ser.Points))
		ly += 16
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

func clampCoord(v, lo, hi float64, log bool) float64 {
	if log && v <= 0 {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (s *Scatter) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	consider := func(v float64, log bool, mn, mx *float64) {
		if log && v <= 0 {
			return
		}
		if v < *mn {
			*mn = v
		}
		if v > *mx {
			*mx = v
		}
	}
	for _, ser := range s.Series {
		for _, p := range ser.Points {
			consider(p.X, s.XLog, &xmin, &xmax)
			consider(p.Y, s.YLog, &ymin, &ymax)
		}
	}
	for _, v := range s.VLines {
		consider(v, s.XLog, &xmin, &xmax)
	}
	for _, v := range s.HLines {
		consider(v, s.YLog, &ymin, &ymax)
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax = 0, 1
	}
	if math.IsInf(ymin, 1) {
		ymin, ymax = 0, 1
	}
	xmin, xmax = pad(xmin, xmax, s.XLog)
	ymin, ymax = pad(ymin, ymax, s.YLog)
	return
}

func pad(lo, hi float64, log bool) (float64, float64) {
	if log {
		if lo == hi {
			return lo / 2, hi * 2
		}
		r := hi / lo
		f := math.Pow(r, 0.06)
		return lo / f, hi * f
	}
	if lo == hi {
		return lo - 1, hi + 1
	}
	d := (hi - lo) * 0.06
	return lo - d, hi + d
}

func frac(v, lo, hi float64, log bool) float64 {
	if log {
		if v <= 0 {
			v = lo
		}
		return (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
	}
	return (v - lo) / (hi - lo)
}

// ticks chooses 4-7 human tick positions.
func ticks(lo, hi float64, log bool) []float64 {
	if log {
		var out []float64
		for e := math.Floor(math.Log10(lo)); e <= math.Ceil(math.Log10(hi)); e++ {
			t := math.Pow(10, e)
			if t >= lo && t <= hi {
				out = append(out, t)
			}
		}
		if len(out) >= 2 {
			return out
		}
		// Narrow range: fall back to linear ticks.
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	for span/step > 7 {
		step *= 2
	}
	for span/step < 3 {
		step /= 2
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi; t += step {
		out = append(out, t)
	}
	return out
}

func tickLabel(t float64) string {
	a := math.Abs(t)
	switch {
	case t == 0:
		return "0"
	case a >= 1e4 || a < 1e-3:
		return fmt.Sprintf("%.0e", t)
	case a < 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", t), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", t), "0"), ".")
	}
}

// Page assembles SVG figures into one standalone HTML page.
func Page(title string, sections ...string) string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>")
	sb.WriteString(html.EscapeString(title))
	sb.WriteString(`</title><style>
body { font-family: sans-serif; margin: 24px; color: #111; }
h1 { font-size: 20px; }
.fig { margin-bottom: 28px; }
pre { background: #f6f6f6; padding: 10px; overflow-x: auto; }
</style></head><body>`)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", html.EscapeString(title))
	for _, s := range sections {
		fmt.Fprintf(&sb, `<div class="fig">%s</div>`+"\n", s)
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

// Pre wraps preformatted text for inclusion in a Page.
func Pre(text string) string {
	return "<pre>" + html.EscapeString(text) + "</pre>"
}
