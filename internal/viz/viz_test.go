package viz

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleScatter() *Scatter {
	return &Scatter{
		Title:  "test plot",
		XLabel: "speedup",
		YLabel: "error",
		YLog:   true,
		Series: []Series{
			{Name: "pass", Points: []XY{{X: 1.5, Y: 1e-6, Label: "a<b"}, {X: 0.8, Y: 1e-3}}},
			{Name: "fail", Color: "#ff0000", Points: []XY{{X: 2.0, Y: 0.5}}},
		},
		HLines: []float64{1e-4},
		VLines: []float64{1.0},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := sampleScatter().SVG()
	for _, want := range []string{"<svg", "</svg>", "circle", "test plot",
		"speedup", "error", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") < 3+2 { // 3 points + legend dots
		t.Errorf("too few circles: %d", strings.Count(svg, "<circle"))
	}
	// Labels must be HTML-escaped.
	if strings.Contains(svg, "a<b") {
		t.Error("tooltip label not escaped")
	}
	if !strings.Contains(svg, "a&lt;b") {
		t.Error("escaped tooltip missing")
	}
	// Tooltip circles close with </circle>; everything else self-closes.
	if strings.Count(svg, "<title>") != strings.Count(svg, "</title>") {
		t.Error("unbalanced <title> tags")
	}
}

func TestEmptyScatter(t *testing.T) {
	s := &Scatter{Title: "empty"}
	svg := s.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("empty scatter should still render axes")
	}
}

func TestLogAxisSkipsNonPositive(t *testing.T) {
	s := &Scatter{
		YLog: true,
		Series: []Series{{Name: "s", Points: []XY{
			{X: 1, Y: 0}, {X: 2, Y: 1e-3}, {X: 3, Y: 1},
		}}},
	}
	svg := s.SVG()
	if !strings.Contains(svg, "<circle") {
		t.Error("points dropped entirely")
	}
	// Must not emit NaN coordinates.
	if strings.Contains(svg, "NaN") {
		t.Error("NaN coordinates in SVG")
	}
}

// Property: no finite input produces NaN/Inf coordinates in the output.
func TestSVGCoordinatesFiniteProperty(t *testing.T) {
	f := func(xs, ys [6]float64) bool {
		pts := make([]XY, 0, 6)
		for i := range xs {
			x, y := xs[i], ys[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			// Keep magnitudes printable.
			if math.Abs(x) > 1e12 || math.Abs(y) > 1e12 {
				continue
			}
			pts = append(pts, XY{X: x, Y: y})
		}
		s := &Scatter{Series: []Series{{Name: "p", Points: pts}}}
		svg := s.SVG()
		return !strings.Contains(svg, "NaN") && !strings.Contains(svg, "Inf")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTicks(t *testing.T) {
	lin := ticks(0, 10, false)
	if len(lin) < 3 || len(lin) > 12 {
		t.Errorf("linear ticks: %v", lin)
	}
	log := ticks(1e-6, 1e2, true)
	if len(log) < 4 {
		t.Errorf("log ticks: %v", log)
	}
	for i := 1; i < len(log); i++ {
		if log[i] <= log[i-1] {
			t.Errorf("log ticks not increasing: %v", log)
		}
	}
	if got := ticks(5, 5, false); len(got) == 0 {
		t.Errorf("degenerate range produced no ticks")
	}
}

func TestTickLabel(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		1:     "1",
		2.5:   "2.5",
		1e-6:  "1e-06",
		20000: "2e+04",
		0.25:  "0.25",
	}
	for v, want := range cases {
		if got := tickLabel(v); got != want {
			t.Errorf("tickLabel(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestPage(t *testing.T) {
	page := Page("My <Title>", "<svg>1</svg>", Pre("raw & text"))
	for _, want := range []string{"<!DOCTYPE html>", "My &lt;Title&gt;",
		"<svg>1</svg>", "raw &amp; text", "</html>"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestPadAndFrac(t *testing.T) {
	lo, hi := pad(1, 1, false)
	if lo >= hi {
		t.Error("pad of degenerate linear range")
	}
	lo, hi = pad(1, 1, true)
	if lo >= hi || lo <= 0 {
		t.Error("pad of degenerate log range")
	}
	if f := frac(5, 0, 10, false); f != 0.5 {
		t.Errorf("frac linear = %g", f)
	}
	if f := frac(10, 1, 100, true); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("frac log = %g", f)
	}
}
