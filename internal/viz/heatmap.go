package viz

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// Heatmap is a row-labelled cell grid rendered as an HTML table, used
// for per-procedure error heatmaps. Cell color scales with Value on a
// log scale from white (the smallest positive value) to deep red (the
// largest); zero and negative values stay uncolored.
type Heatmap struct {
	Title  string
	Legend string
	Rows   []HeatRow
}

// HeatRow is one labelled row of cells.
type HeatRow struct {
	Name  string
	Cells []HeatCell
}

// HeatCell is one colored cell. Label is rendered in the cell, Title
// becomes the hover tooltip.
type HeatCell struct {
	Label string
	Title string
	Value float64
}

// HTML renders the heatmap as an HTML fragment for inclusion in Page.
func (h *Heatmap) HTML() string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Rows {
		for _, c := range row.Cells {
			if c.Value <= 0 {
				continue
			}
			if c.Value < lo {
				lo = c.Value
			}
			if c.Value > hi {
				hi = c.Value
			}
		}
	}

	var sb strings.Builder
	sb.WriteString(`<div class="heatmap">`)
	if h.Title != "" {
		fmt.Fprintf(&sb, "<h2>%s</h2>", html.EscapeString(h.Title))
	}
	sb.WriteString(`<table style="border-collapse: collapse; font-family: monospace; font-size: 12px;">`)
	for _, row := range h.Rows {
		sb.WriteString(`<tr>`)
		fmt.Fprintf(&sb, `<th style="text-align: right; padding: 2px 8px 2px 0; font-weight: normal; color: #444;">%s</th>`,
			html.EscapeString(row.Name))
		for _, c := range row.Cells {
			bg, fg := heatColor(c.Value, lo, hi)
			fmt.Fprintf(&sb, `<td style="border: 1px solid #ddd; padding: 2px 6px; background: %s; color: %s;" title="%s">%s</td>`,
				bg, fg, html.EscapeString(c.Title), html.EscapeString(c.Label))
		}
		sb.WriteString(`</tr>`)
	}
	sb.WriteString(`</table>`)
	if h.Legend != "" {
		fmt.Fprintf(&sb, `<p style="color: #666; font-size: 12px;">%s</p>`, html.EscapeString(h.Legend))
	}
	sb.WriteString(`</div>`)
	return sb.String()
}

// heatColor maps v into a white→red ramp, log-scaled over [lo, hi].
// Returns background and a contrasting text color.
func heatColor(v, lo, hi float64) (bg, fg string) {
	if v <= 0 || math.IsInf(lo, 1) {
		return "#ffffff", "#111"
	}
	f := 1.0
	if hi > lo {
		f = (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	// Interpolate white (255,255,255) → #b91c1c (185,28,28).
	r := 255 + f*(185-255)
	g := 255 + f*(28-255)
	b := 255 + f*(28-255)
	fg = "#111"
	if f > 0.55 {
		fg = "#fff"
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(b)), fg
}
