package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/transform"
)

// Table1Row is one row of Table I: summary statistics for targeted
// hotspots, with the paper's reported values alongside ours.
type Table1Row struct {
	Model          string
	TargetedModule string
	CPUSharePct    float64
	FPVars         int
	PaperSharePct  float64
	PaperFPVars    int
}

// Table1 profiles each weather/climate model baseline and reports the
// hotspot statistics of Table I.
func Table1() ([]Table1Row, error) {
	paper := map[string]struct {
		share float64
		vars  int
	}{
		"mpas-a": {15, 445},
		"adcirc": {12, 468},
		"mom6":   {9, 351},
	}
	var rows []Table1Row
	for _, m := range models.WeatherClimate() {
		t, err := core.New(m, core.Options{Seed: 1})
		if err != nil {
			return nil, err
		}
		bl := t.BaselineInfo()
		prog := t.Program()
		rows = append(rows, Table1Row{
			Model:          m.Name,
			TargetedModule: m.Hotspot,
			CPUSharePct:    100 * bl.HotspotShare,
			FPVars:         len(transform.Atoms(prog, m.Hotspot)),
			PaperSharePct:  paper[m.Name].share,
			PaperFPVars:    paper[m.Name].vars,
		})
	}
	return rows, nil
}

// RenderTable1 formats Table I.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE I: Summary statistics for targeted hotspots\n")
	fmt.Fprintf(&sb, "%-8s %-22s %12s %10s %14s %12s\n",
		"Model", "Targeted Module", "% CPU Time", "# FP Vars", "paper % CPU", "paper #FP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-22s %11.1f%% %10d %13.0f%% %12d\n",
			r.Model, r.TargetedModule, r.CPUSharePct, r.FPVars, r.PaperSharePct, r.PaperFPVars)
	}
	return sb.String()
}

// Table2Row mirrors the paper's Table II with the paper's values for
// comparison.
type Table2Row struct {
	core.TableRow
	PaperTotal   int
	PaperPass    float64
	PaperFail    float64
	PaperTimeout float64
	PaperError   float64
	PaperSpeedup float64
}

// Table2 summarizes the suite's hotspot searches as Table II.
func Table2(s *Suite) []Table2Row {
	paper := map[string]Table2Row{
		"mpas-a": {PaperTotal: 48, PaperPass: 37.5, PaperFail: 56.2, PaperTimeout: 6.3, PaperError: 0, PaperSpeedup: 1.95},
		"adcirc": {PaperTotal: 74, PaperPass: 36.4, PaperFail: 33.8, PaperTimeout: 0, PaperError: 29.7, PaperSpeedup: 1.12},
		"mom6":   {PaperTotal: 858, PaperPass: 17.2, PaperFail: 31.0, PaperTimeout: 0, PaperError: 51.7, PaperSpeedup: 1.04},
	}
	var rows []Table2Row
	for _, name := range []string{"mpas-a", "adcirc", "mom6"} {
		res, ok := s.Hotspot[name]
		if !ok {
			continue
		}
		row := paper[name]
		row.TableRow = res.TableIIRow()
		rows = append(rows, row)
	}
	return rows
}

// RenderTable2 formats Table II, ours against the paper's.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE II: Summary metrics for variants explored (ours | paper)\n")
	fmt.Fprintf(&sb, "%-8s %14s %15s %15s %15s %15s %16s\n",
		"Model", "Total", "Pass", "Fail", "Timeout", "Error", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %6d | %5d %6.1f%% | %5.1f%% %6.1f%% | %5.1f%% %6.1f%% | %5.1f%% %6.1f%% | %5.1f%% %6.2fx | %5.2fx\n",
			r.Model, r.Total, r.PaperTotal,
			r.PassPct, r.PaperPass,
			r.FailPct, r.PaperFail,
			r.TimeoutPct, r.PaperTimeout,
			r.ErrorPct, r.PaperError,
			r.BestSpeedup, r.PaperSpeedup)
	}
	return sb.String()
}
