// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) from this repository's substrates, plus two
// extensions: the §V static-filter ablation and an Eq. (1)
// noise-tolerance study. See DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/search"
)

// Suite holds the search results shared by Table II and Figures 5-6
// (one delta-debugging search per weather/climate model) plus the
// Fig. 7 whole-model-guided MPAS-A search.
type Suite struct {
	Seed       int64
	Hotspot    map[string]*core.Result // by model name (hotspot-guided)
	WholeModel *core.Result            // MPAS-A, whole-model-guided
}

// Options configures a suite run beyond its seed: the crash-safety and
// resilience protections of a single tuning run, applied to every
// search the suite executes. The zero value runs unprotected (fine for
// tests; long sweeps want journals and a supervisor).
type Options struct {
	// JournalDir, if non-empty, gives each search its own crash-safe
	// journal (plus checkpoint and resilience events sidecar) under this
	// directory, named <model>.journal / mpas-a-whole.journal.
	JournalDir string
	// Resume replays the existing journals in JournalDir.
	Resume bool
	// Supervisor knobs, forwarded to every search (see core.Options).
	Retries        int
	RetriesByClass map[string]int
	Watchdog       time.Duration
	Breaker        int
	HalfOpen       bool
	MaxQuarantined int
	// DrainGrace bounds in-flight evaluation drain after ctx cancels.
	DrainGrace time.Duration
}

// RunSuite executes the four searches of the case study (the artifact's
// four parallel experiment instances). Deterministic for a given seed.
// ctx cancels the suite between and within searches (nil never cancels).
func RunSuite(ctx context.Context, seed int64) (*Suite, error) {
	return RunSuiteOpts(ctx, seed, Options{})
}

// RunSuiteOpts is RunSuite with crash-safety and resilience options.
func RunSuiteOpts(ctx context.Context, seed int64, sopts Options) (*Suite, error) {
	par := suiteParallelism()
	build := func(whole bool, journalName string) core.Options {
		o := core.Options{
			Seed: seed, Parallelism: par, WholeModel: whole,
			Retries: sopts.Retries, RetriesByClass: sopts.RetriesByClass,
			Watchdog: sopts.Watchdog, Breaker: sopts.Breaker,
			HalfOpen: sopts.HalfOpen, MaxQuarantined: sopts.MaxQuarantined,
			DrainGrace: sopts.DrainGrace,
		}
		if sopts.JournalDir != "" {
			o.JournalPath = filepath.Join(sopts.JournalDir, journalName)
			o.Resume = sopts.Resume
		}
		return o
	}
	s := &Suite{Seed: seed, Hotspot: make(map[string]*core.Result)}
	for _, m := range models.WeatherClimate() {
		res, err := runSearch(ctx, m, build(false, m.Name+".journal"))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", m.Name, err)
		}
		s.Hotspot[m.Name] = res
	}
	mp := models.MPASA()
	whole, err := runSearch(ctx, mp, build(true, mp.Name+"-whole.journal"))
	if err != nil {
		return nil, fmt.Errorf("experiments: mpas-a whole-model: %w", err)
	}
	s.WholeModel = whole
	return s, nil
}

// suiteParallelism bounds in-process variant evaluation concurrency:
// enough workers to emulate the artifact's parallel nodes without
// oversubscribing test machines.
func suiteParallelism() int {
	if n := runtime.NumCPU(); n < 8 {
		return n
	}
	return 8
}

func runSearch(ctx context.Context, m *models.Model, opts core.Options) (*core.Result, error) {
	t, err := core.New(m, opts)
	if err != nil {
		return nil, err
	}
	return t.Run(ctx)
}

var (
	sharedOnce  sync.Once
	sharedSuite *Suite
	sharedErr   error
)

// Shared returns a lazily built, process-wide suite (seed 1), so tests
// and benchmarks that need the same searches do not repeat them.
func Shared() (*Suite, error) {
	sharedOnce.Do(func() {
		sharedSuite, sharedErr = RunSuite(nil, 1)
	})
	return sharedSuite, sharedErr
}

// Point is one variant in a speedup-error scatter (Figures 2, 5, 7).
type Point struct {
	Index   int
	Pct32   float64
	Speedup float64
	RelErr  float64
	Status  search.Status
}

// pointsFromLog converts an evaluation log into scatter points.
// Variants that errored or timed out carry no speedup-error coordinates
// and are reported with status only (as the paper's interactive plots
// bucket them separately).
func pointsFromLog(log *search.Log) []Point {
	pts := make([]Point, 0, len(log.Evals))
	for _, ev := range log.Evals {
		pts = append(pts, Point{
			Index:   ev.Index,
			Pct32:   ev.Pct32(),
			Speedup: ev.Speedup,
			RelErr:  ev.RelError,
			Status:  ev.Status,
		})
	}
	return pts
}
