package experiments

import (
	"fmt"
	"strings"

	"repro/internal/perfmodel"
)

// NoiseRow reports how reliably Eq. (1) classifies a marginal variant
// for a given n, under a given runtime noise level.
type NoiseRow struct {
	RelStdDev   float64
	N           int
	TrueSpeedup float64
	// MisrankPct is how often the measured speedup falls on the wrong
	// side of 1.0 across trials.
	MisrankPct float64
	// SpreadPct is the relative spread (max-min)/true of the measured
	// speedups.
	SpreadPct float64
}

// NoiseStudy evaluates Eq. (1)'s median-of-n for the two noise regimes
// observed in the paper (1% for MPAS-A/ADCIRC, 9% for MOM6) on a
// marginal variant with a true speedup of 1.05 — the regime where the
// paper's choice n=1 vs n=7 matters.
func NoiseStudy(seed int64) []NoiseRow {
	const trials = 400
	const trueSpeedup = 1.05
	var rows []NoiseRow
	for _, sd := range []float64{0.01, 0.09} {
		for _, n := range []int{1, 3, 5, 7} {
			noise := perfmodel.NewNoise(sd, seed+int64(n*1000)+int64(sd*1e6))
			baseTime := 1000.0
			varTime := baseTime / trueSpeedup
			misrank := 0
			min, max := 1e308, -1e308
			for i := 0; i < trials; i++ {
				m := noise.MedianOfN(baseTime, n) / noise.MedianOfN(varTime, n)
				if m < 1.0 {
					misrank++
				}
				if m < min {
					min = m
				}
				if m > max {
					max = m
				}
			}
			rows = append(rows, NoiseRow{
				RelStdDev:   sd,
				N:           n,
				TrueSpeedup: trueSpeedup,
				MisrankPct:  100 * float64(misrank) / trials,
				SpreadPct:   100 * (max - min) / trueSpeedup,
			})
		}
	}
	return rows
}

// RenderNoise formats the Eq. (1) study.
func RenderNoise(rows []NoiseRow) string {
	var sb strings.Builder
	sb.WriteString("EQ. (1) STUDY: median-of-n speedup vs runtime noise (true speedup 1.05)\n")
	fmt.Fprintf(&sb, "  %8s %4s %14s %12s\n", "noise", "n", "misranked", "spread")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %7.0f%% %4d %13.1f%% %11.1f%%\n",
			100*r.RelStdDev, r.N, r.MisrankPct, r.SpreadPct)
	}
	sb.WriteString("  (the paper selects n=1 at 1% noise and n=7 at 9% noise)\n")
	return sb.String()
}
