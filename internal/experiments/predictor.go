package experiments

import (
	"fmt"
	"strings"

	"repro/internal/models"
	"repro/internal/perfmodel"
	"repro/internal/predict"
	"repro/internal/search"
	"repro/internal/transform"
)

// PredictorResult evaluates the paper's closing suggestion — using ML to
// predict variant performance before dynamic evaluation [42] — on the
// data a real search produced: train a ridge model over static features
// on the first half of the MPAS-A search's evaluated variants, predict
// the second half, and report the rank correlation.
type PredictorResult struct {
	TrainN, TestN int
	// RankCorrelation is Spearman's rho between predicted and measured
	// speedups on the held-out half.
	RankCorrelation float64
	// TopAgreement reports whether the predictor's top-ranked held-out
	// variant is within the measured top 3.
	TopAgreement bool
}

// PredictorStudy runs the study against a suite's MPAS-A search log.
func PredictorStudy(s *Suite) (*PredictorResult, error) {
	res, ok := s.Hotspot["mpas-a"]
	if !ok {
		return nil, fmt.Errorf("experiments: suite lacks mpas-a")
	}
	m := models.MPASA()
	prog, err := m.Parse()
	if err != nil {
		return nil, err
	}
	atoms := transform.Atoms(prog, m.Hotspot)
	ex := predict.NewExtractor(prog, atoms, perfmodel.Default())

	type sample struct {
		x [predict.FeatureCount]float64
		y float64
	}
	var all []sample
	for _, ev := range res.Outcome.Log.Evals {
		if ev.Status != search.StatusPass && ev.Status != search.StatusFail {
			continue
		}
		x, err := ex.Extract(ev.Assignment)
		if err != nil {
			return nil, err
		}
		all = append(all, sample{x, ev.Speedup})
	}
	if len(all) < 8 {
		return nil, fmt.Errorf("experiments: only %d usable variants for the predictor study", len(all))
	}
	half := len(all) / 2
	r := predict.NewRidge(1e-3)
	for _, sm := range all[:half] {
		r.Observe(sm.x, sm.y)
	}
	var pred, actual []float64
	for _, sm := range all[half:] {
		p, ok := r.Predict(sm.x)
		if !ok {
			return nil, fmt.Errorf("experiments: singular predictor")
		}
		pred = append(pred, p)
		actual = append(actual, sm.y)
	}
	rho, err := predict.SpearmanRank(pred, actual)
	if err != nil {
		return nil, err
	}
	out := &PredictorResult{TrainN: half, TestN: len(all) - half, RankCorrelation: rho}

	// Top agreement.
	bestPred, bestsActual := argmax(pred), topK(actual, 3)
	out.TopAgreement = bestsActual[bestPred]
	return out, nil
}

func argmax(xs []float64) int {
	bi := 0
	for i, v := range xs {
		if v > xs[bi] {
			bi = i
		}
	}
	return bi
}

// topK returns a membership set of the indices of the k largest values.
func topK(xs []float64, k int) map[int]bool {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && xs[idx[j]] > xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	out := make(map[int]bool, k)
	for _, i := range idx[:k] {
		out[i] = true
	}
	return out
}

// RenderPredictor formats the study.
func RenderPredictor(r *PredictorResult) string {
	var sb strings.Builder
	sb.WriteString("PREDICTOR STUDY ([42]-style): static features -> speedup ranking\n")
	fmt.Fprintf(&sb, "  trained on %d evaluated variants, tested on %d held out\n", r.TrainN, r.TestN)
	fmt.Fprintf(&sb, "  Spearman rank correlation: %.3f\n", r.RankCorrelation)
	fmt.Fprintf(&sb, "  predictor's top pick in measured top-3: %v\n", r.TopAgreement)
	sb.WriteString("  (supports the paper's closing recommendation: predictable enough to\n   steer a search away from bad variants before dynamic evaluation)\n")
	return sb.String()
}
