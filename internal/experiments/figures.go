package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/transform"
)

// Fig2 sweeps all 2^8 = 256 funarc variants by brute force (§II-B) and
// returns the speedup-error scatter plus the optimal frontier.
type Fig2Result struct {
	Points   []Point
	Frontier []Point
	// Uniform32 and Best describe the walkthrough's comparison: the
	// frontier variant under the error budget vs. the uniform 32-bit
	// variant.
	Uniform32 Point
	Best      Point
	Threshold float64
}

// Fig2 runs the brute-force funarc sweep. ctx cancels the sweep (nil
// never cancels).
func Fig2(ctx context.Context, seed int64) (*Fig2Result, error) {
	m := models.Funarc()
	t, err := core.New(m, core.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	atoms := t.Atoms()
	log, err := search.BruteForce(ctx, t, atoms, suiteParallelism())
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{
		Points:    pointsFromLog(log),
		Threshold: t.BaselineInfo().Threshold,
	}
	for _, ev := range log.Frontier() {
		out.Frontier = append(out.Frontier, Point{
			Index: ev.Index, Pct32: ev.Pct32(), Speedup: ev.Speedup,
			RelErr: ev.RelError, Status: ev.Status,
		})
	}
	if u32, ok := log.Lookup(transform.Uniform(atoms, 4)); ok {
		out.Uniform32 = Point{Index: u32.Index, Pct32: 100, Speedup: u32.Speedup, RelErr: u32.RelError, Status: u32.Status}
	}
	if best := log.Best(search.Criteria{MaxRelError: out.Threshold, MinSpeedup: 1}); best != nil {
		out.Best = Point{Index: best.Index, Pct32: best.Pct32(), Speedup: best.Speedup, RelErr: best.RelError, Status: best.Status}
	}
	return out, nil
}

// RenderFig2 summarizes the sweep in the walkthrough's terms.
func RenderFig2(r *Fig2Result) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 2: funarc mixed-precision variants (brute force, 256 variants)\n")
	worse := 0
	for _, p := range r.Points {
		if p.Status == search.StatusPass || p.Status == search.StatusFail {
			if p.Speedup < 1 && p.RelErr > 0 {
				worse++
			}
		}
	}
	fmt.Fprintf(&sb, "  variants: %d, on frontier: %d, error budget %.1e\n",
		len(r.Points), len(r.Frontier), r.Threshold)
	fmt.Fprintf(&sb, "  worse on both axes than the 64-bit original: %d (%.0f%%; paper: ~67%%)\n",
		worse, 100*float64(worse)/float64(len(r.Points)))
	fmt.Fprintf(&sb, "  uniform 32-bit: %.2fx speedup, %.2e error\n", r.Uniform32.Speedup, r.Uniform32.RelErr)
	fmt.Fprintf(&sb, "  frontier pick : %.2fx speedup, %.2e error (%.1fx less error than uniform 32)\n",
		r.Best.Speedup, r.Best.RelErr, r.Uniform32.RelErr/nonZero(r.Best.RelErr))
	sb.WriteString("  frontier (error ascending):\n")
	for _, p := range r.Frontier {
		fmt.Fprintf(&sb, "    speedup %.3fx  err %.3e  (%2.0f%% 32-bit)\n", p.Speedup, p.RelErr, p.Pct32)
	}
	return sb.String()
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1e-300
	}
	return v
}

// Fig5Series is one model's speedup-error scatter from its search log
// (Fig. 5), with the cluster summary used in the artifact checks.
type Fig5Series struct {
	Model     string
	Points    []Point
	Threshold float64
	Clusters  ClusterSummary
}

// ClusterSummary buckets completed variants by their 32-bit percentage
// and reports the median speedup per bucket (the three MPAS-A clusters,
// the two Fig. 7 clusters, ...).
type ClusterSummary struct {
	Lo, Mid, Hi ClusterStat // <30%, 30-89%, >=90% 32-bit
}

// ClusterStat summarizes one bucket.
type ClusterStat struct {
	N             int
	MedianSpeedup float64
	MinSpeedup    float64
	MaxSpeedup    float64
}

// Fig5 extracts the scatter for every hotspot-guided search.
func Fig5(s *Suite) []Fig5Series {
	var out []Fig5Series
	for _, name := range []string{"mpas-a", "adcirc", "mom6"} {
		res, ok := s.Hotspot[name]
		if !ok {
			continue
		}
		pts := pointsFromLog(res.Outcome.Log)
		out = append(out, Fig5Series{
			Model:     name,
			Points:    pts,
			Threshold: res.Baseline.Threshold,
			Clusters:  clusterize(pts),
		})
	}
	return out
}

func clusterize(pts []Point) ClusterSummary {
	var lo, mid, hi []float64
	for _, p := range pts {
		if p.Status != search.StatusPass && p.Status != search.StatusFail {
			continue
		}
		switch {
		case p.Pct32 < 30:
			lo = append(lo, p.Speedup)
		case p.Pct32 < 90:
			mid = append(mid, p.Speedup)
		default:
			hi = append(hi, p.Speedup)
		}
	}
	return ClusterSummary{Lo: stat(lo), Mid: stat(mid), Hi: stat(hi)}
}

func stat(xs []float64) ClusterStat {
	if len(xs) == 0 {
		return ClusterStat{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return ClusterStat{
		N:             len(sorted),
		MedianSpeedup: sorted[len(sorted)/2],
		MinSpeedup:    sorted[0],
		MaxSpeedup:    sorted[len(sorted)-1],
	}
}

// RenderFig5 formats the scatter summaries.
func RenderFig5(series []Fig5Series) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 5: mixed-precision hotspot variants on speedup-error axes\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "  %s (threshold %.2e): %d variants\n", s.Model, s.Threshold, len(s.Points))
		renderCluster(&sb, "<30%% 32-bit ", s.Clusters.Lo)
		renderCluster(&sb, "30-89%% 32-bit", s.Clusters.Mid)
		renderCluster(&sb, ">=90%% 32-bit", s.Clusters.Hi)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "    #%03d  %5.1f%%32  speedup %6.3f  err %9.3e  %s\n",
				p.Index, p.Pct32, p.Speedup, p.RelErr, p.Status)
		}
	}
	return sb.String()
}

func renderCluster(sb *strings.Builder, label string, c ClusterStat) {
	if c.N == 0 {
		return
	}
	fmt.Fprintf(sb, "    cluster "+label+": n=%d, speedup median %.2f (min %.2f, max %.2f)\n",
		c.N, c.MedianSpeedup, c.MinSpeedup, c.MaxSpeedup)
}

// Fig6Series is one procedure's per-call performance points (Fig. 6).
type Fig6Series struct {
	Model     string
	Proc      string
	ShareePct float64 // the procedure's share of baseline hotspot time
	Points    []core.ProcPoint
}

// Fig6 extracts per-procedure variant performance for each model's
// hotspot procedures, sorted by baseline share within each model.
func Fig6(s *Suite) []Fig6Series {
	var out []Fig6Series
	for _, name := range []string{"mpas-a", "adcirc", "mom6"} {
		res, ok := s.Hotspot[name]
		if !ok {
			continue
		}
		// Baseline per-proc self time for shares.
		self := map[string]float64{}
		var hotTotal float64
		for _, r := range res.Baseline.Regions {
			self[r.Name] = r.Self
		}
		for _, q := range res.ProcNames() {
			hotTotal += self[q]
		}
		for _, q := range res.ProcNames() {
			pts := res.SortedProcVariants(q)
			share := 0.0
			if hotTotal > 0 {
				share = 100 * self[q] / hotTotal
			}
			out = append(out, Fig6Series{Model: name, Proc: q, ShareePct: share, Points: pts})
		}
	}
	return out
}

// RenderFig6 formats the per-procedure series.
func RenderFig6(series []Fig6Series) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 6: per-procedure performance of unique precision assignments\n")
	sb.WriteString("  (speedup = baseline avg CPU/call divided by variant avg CPU/call)\n")
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		min, max := s.Points[0].Speedup, s.Points[0].Speedup
		for _, p := range s.Points {
			if p.Speedup < min {
				min = p.Speedup
			}
			if p.Speedup > max {
				max = p.Speedup
			}
		}
		fmt.Fprintf(&sb, "  %-52s (%4.1f%% of hotspot) variants=%3d  speedup %6.3fx .. %6.3fx\n",
			s.Model+"/"+s.Proc, s.ShareePct, len(s.Points), min, max)
	}
	return sb.String()
}

// Fig7Result is the §IV-C whole-model-guided MPAS-A search.
type Fig7Result struct {
	Points    []Point
	Clusters  ClusterSummary
	Best      *search.Evaluation
	Threshold float64
	Minimal   []string
}

// Fig7 extracts the whole-model scatter.
func Fig7(s *Suite) *Fig7Result {
	res := s.WholeModel
	pts := pointsFromLog(res.Outcome.Log)
	return &Fig7Result{
		Points:    pts,
		Clusters:  clusterize(pts),
		Best:      res.Best(),
		Threshold: res.Baseline.Threshold,
		Minimal:   res.Outcome.Minimal,
	}
}

// RenderFig7 formats the whole-model experiment.
func RenderFig7(r *Fig7Result) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 7: MPAS-A variants, search guided by WHOLE-MODEL time (§IV-C)\n")
	fmt.Fprintf(&sb, "  %d variants explored\n", len(r.Points))
	renderCluster(&sb, "<30%% 32-bit ", r.Clusters.Lo)
	renderCluster(&sb, "30-89%% 32-bit", r.Clusters.Mid)
	renderCluster(&sb, ">=90%% 32-bit", r.Clusters.Hi)
	if r.Best != nil {
		fmt.Fprintf(&sb, "  best passing variant: %.3fx whole-model speedup with %d/%d lowered (paper: no appreciable speedup)\n",
			r.Best.Speedup, r.Best.Lowered, r.Best.TotalAtoms)
	} else {
		sb.WriteString("  no passing variant (whole-model criterion rejects hotspot gains)\n")
	}
	return sb.String()
}
