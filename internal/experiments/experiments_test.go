package experiments

import (
	"strings"
	"testing"

	"repro/internal/search"
)

// TestTable1 checks the hotspot statistics against the paper's bands.
func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	t.Logf("\n%s", RenderTable1(rows))
	for _, r := range rows {
		if r.CPUSharePct < 5 || r.CPUSharePct > 25 {
			t.Errorf("%s: CPU share %.1f%% far from paper's %.0f%%", r.Model, r.CPUSharePct, r.PaperSharePct)
		}
		if r.FPVars < 20 {
			t.Errorf("%s: only %d FP vars", r.Model, r.FPVars)
		}
	}
	// Ordering matches the paper: MPAS-A > ADCIRC > MOM6 in CPU share.
	if !(rows[0].CPUSharePct > rows[2].CPUSharePct) {
		t.Errorf("share ordering differs from Table I: %v", rows)
	}
}

// TestSuiteReproducesPaperShapes is the main end-to-end check: it runs
// all four searches and validates the artifact appendix's qualitative
// properties.
func TestSuiteReproducesPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	s, err := Shared()
	if err != nil {
		t.Fatal(err)
	}

	rows := Table2(s)
	t.Logf("\n%s", RenderTable2(rows))
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Model] = r
	}

	// MPAS-A: best speedup ~1.9x.
	if r := byName["mpas-a"]; r.BestSpeedup < 1.7 || r.BestSpeedup > 2.2 {
		t.Errorf("MPAS-A best speedup %.2f, want ~1.9x", r.BestSpeedup)
	}
	// ADCIRC: best speedup ~1.1x.
	if r := byName["adcirc"]; r.BestSpeedup < 1.02 || r.BestSpeedup > 1.45 {
		t.Errorf("ADCIRC best speedup %.2f, want ~1.1x", r.BestSpeedup)
	}
	// MOM6: best speedup negligible — within the 9% noise floor of a
	// true ~1.0x (the paper's 1.04x is the same artifact).
	if r := byName["mom6"]; r.BestSpeedup > 1.25 {
		t.Errorf("MOM6 best speedup %.2f, want negligible (~1.0x +/- noise)", r.BestSpeedup)
	}
	if r := byName["mom6"]; r.ErrorPct < 10 {
		t.Errorf("MOM6 error rate %.1f%%, paper reports 51.7%%", r.ErrorPct)
	}

	// Fig. 5 cluster shapes.
	for _, fs := range Fig5(s) {
		switch fs.Model {
		case "mpas-a":
			if fs.Clusters.Hi.N > 0 && fs.Clusters.Hi.MedianSpeedup < 1.5 {
				t.Errorf("MPAS-A >=90%% 32-bit cluster median %.2f, want high speedup", fs.Clusters.Hi.MedianSpeedup)
			}
			if fs.Clusters.Lo.N > 0 && fs.Clusters.Lo.MedianSpeedup > 1.15 {
				t.Errorf("MPAS-A <30%% 32-bit cluster median %.2f, want <=1x", fs.Clusters.Lo.MedianSpeedup)
			}
		case "mom6":
			if fs.Clusters.Hi.N > 0 && fs.Clusters.Hi.MedianSpeedup > 1.0 {
				t.Errorf("MOM6 >=90%% cluster median %.2f, want slowdown", fs.Clusters.Hi.MedianSpeedup)
			}
		}
	}

	// Fig. 6: flux_adjust slowdown points and jcg bimodality.
	var adjMin float64 = 1e9
	var jcgHi, jcgLo bool
	for _, fs := range Fig6(s) {
		for _, p := range fs.Points {
			if strings.HasSuffix(fs.Proc, "zonal_flux_adjust") && p.Speedup > 0 && p.Speedup < adjMin {
				adjMin = p.Speedup
			}
			if strings.HasSuffix(fs.Proc, "jcg") {
				if p.Speedup >= 2 {
					jcgHi = true
				}
				if p.Speedup <= 1.3 && p.Speedup > 0 {
					jcgLo = true
				}
			}
		}
	}
	if adjMin > 0.5 {
		t.Errorf("no MOM6 flux_adjust slowdown observed (min speedup %.3f; paper: 0.01-0.1x)", adjMin)
	}
	if !jcgHi || !jcgLo {
		t.Errorf("ADCIRC jcg not bimodal (hi=%v lo=%v; paper: <=1x and 3-10x clusters)", jcgHi, jcgLo)
	}
	t.Logf("\n%s", RenderFig6(Fig6(s)))

	// Fig. 7: whole-model guidance strips the gains.
	f7 := Fig7(s)
	t.Logf("\n%s", RenderFig7(f7))
	if f7.Best != nil && f7.Best.Speedup > 1.2 {
		t.Errorf("whole-model best speedup %.2f, paper: no appreciable speedup", f7.Best.Speedup)
	}
	if f7.Clusters.Hi.N > 0 && f7.Clusters.Hi.MedianSpeedup > 1.05 {
		t.Errorf(">=90%% 32-bit whole-model cluster median %.2f, want ~<=1x", f7.Clusters.Hi.MedianSpeedup)
	}
}

func TestFig2Funarc(t *testing.T) {
	r, err := Fig2(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderFig2(r))
	if len(r.Points) != 256 {
		t.Fatalf("funarc sweep explored %d variants, want 256", len(r.Points))
	}
	if len(r.Frontier) < 2 {
		t.Errorf("frontier has %d points", len(r.Frontier))
	}
	if r.Uniform32.Speedup < 1.3 {
		t.Errorf("uniform 32-bit speedup %.2f, want ~1.4-1.6x", r.Uniform32.Speedup)
	}
	if r.Best.RelErr >= r.Uniform32.RelErr {
		t.Errorf("frontier pick error %.2e not below uniform-32 error %.2e", r.Best.RelErr, r.Uniform32.RelErr)
	}
	// Paper: ~67% of variants are worse on both axes.
	worse := 0
	completed := 0
	for _, p := range r.Points {
		if p.Status != search.StatusPass && p.Status != search.StatusFail {
			continue
		}
		completed++
		if p.Speedup < 1 {
			worse++
		}
	}
	if frac := float64(worse) / float64(completed); frac < 0.3 || frac > 0.98 {
		t.Errorf("slower-than-baseline fraction %.0f%%, paper: ~67%%", 100*frac)
	}
}

func TestNoiseStudy(t *testing.T) {
	rows := NoiseStudy(42)
	t.Logf("\n%s", RenderNoise(rows))
	get := func(sd float64, n int) NoiseRow {
		for _, r := range rows {
			if r.RelStdDev == sd && r.N == n {
				return r
			}
		}
		t.Fatalf("row %v/%d missing", sd, n)
		return NoiseRow{}
	}
	// At 1% noise even n=1 rarely misranks a 5% speedup; at 9% noise
	// n=1 misranks often and n=7 fixes most of it (the paper's choices).
	if r := get(0.01, 1); r.MisrankPct > 10 {
		t.Errorf("1%% noise, n=1: misrank %.1f%%, expected small", r.MisrankPct)
	}
	r91, r97 := get(0.09, 1), get(0.09, 7)
	if r91.MisrankPct <= r97.MisrankPct {
		t.Errorf("9%% noise: n=7 (%.1f%%) should misrank less than n=1 (%.1f%%)", r97.MisrankPct, r91.MisrankPct)
	}
	if r97.SpreadPct >= r91.SpreadPct {
		t.Errorf("9%% noise: n=7 spread %.1f%% should be below n=1 spread %.1f%%", r97.SpreadPct, r91.SpreadPct)
	}
}

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs two searches")
	}
	r, err := Ablation(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderAblation(r))
	if r.StaticallySkipped == 0 {
		t.Error("static filter rejected nothing")
	}
	if r.DynamicEvalsFilt >= r.DynamicEvalsSame+r.StaticallySkipped {
		t.Error("filter did not reduce dynamic evaluations")
	}
	if r.BestFiltered < r.BestUnfiltered*0.9 {
		t.Errorf("filter lost tuning quality: %.2fx vs %.2fx", r.BestFiltered, r.BestUnfiltered)
	}
}

func TestPredictorStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the shared suite")
	}
	s, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	r, err := PredictorStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderPredictor(r))
	if r.RankCorrelation < 0.3 {
		t.Errorf("rank correlation %.3f too weak", r.RankCorrelation)
	}
	if r.TrainN < 4 || r.TestN < 4 {
		t.Errorf("degenerate split: %d/%d", r.TrainN, r.TestN)
	}
}

func TestMachineStudy(t *testing.T) {
	rows, err := MachineStudy()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderMachine(rows))
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.HotspotSpeedup < 1.6 || r.HotspotSpeedup > 2.4 {
			t.Errorf("%s: speedup %.2f outside the ~2x ISA-portable band", r.Machine, r.HotspotSpeedup)
		}
	}
	if rows[0].Machine == rows[1].Machine {
		t.Error("machines not distinct")
	}
}
