package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/search"
)

func syntheticPoints() []Point {
	return []Point{
		{Index: 1, Pct32: 10, Speedup: 0.9, RelErr: 1e-6, Status: search.StatusPass},
		{Index: 2, Pct32: 95, Speedup: 1.9, RelErr: 1e-2, Status: search.StatusFail},
		{Index: 3, Pct32: 50, Status: search.StatusError},
	}
}

func TestHTMLFigures(t *testing.T) {
	fig2 := &Fig2Result{
		Points:    syntheticPoints(),
		Frontier:  []Point{{Speedup: 1.5, RelErr: 1e-4, Status: search.StatusPass}},
		Uniform32: Point{Speedup: 1.6, RelErr: 1e-3},
		Best:      Point{Speedup: 1.5, RelErr: 1e-4},
		Threshold: 1e-3,
	}
	page2 := HTMLFig2(fig2)
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "optimal frontier", "error/timeout"} {
		if !strings.Contains(page2, want) {
			t.Errorf("fig2 page missing %q", want)
		}
	}

	series5 := []Fig5Series{{
		Model: "mpas-a", Points: syntheticPoints(), Threshold: 1e-3,
		Clusters: clusterize(syntheticPoints()),
	}}
	page5 := HTMLFig5(series5)
	if !strings.Contains(page5, "mpas-a") || !strings.Contains(page5, "<svg") {
		t.Error("fig5 page incomplete")
	}

	series6 := []Fig6Series{{
		Model: "mpas-a", Proc: "atm_time_integration.flux4", ShareePct: 9.3,
		Points: []core.ProcPoint{{Speedup: 0.13, FromIndex: 1}, {Speedup: 2.0, FromIndex: 2}},
	}}
	page6 := HTMLFig6(series6)
	if !strings.Contains(page6, "flux4") || !strings.Contains(page6, "per-call speedup") {
		t.Error("fig6 page incomplete")
	}

	page7 := HTMLFig7(&Fig7Result{Points: syntheticPoints(), Threshold: 1e-3,
		Clusters: clusterize(syntheticPoints())})
	if !strings.Contains(page7, "whole-model") {
		t.Error("fig7 page incomplete")
	}
}

func TestScatterBucketsByStatus(t *testing.T) {
	sc := scatterFromPoints("t", syntheticPoints(), 1e-3)
	if len(sc.Series) != 2 {
		t.Fatalf("series: %d", len(sc.Series))
	}
	if len(sc.Series[0].Points) != 1 || len(sc.Series[1].Points) != 1 {
		t.Errorf("bucketing wrong: %d pass, %d fail",
			len(sc.Series[0].Points), len(sc.Series[1].Points))
	}
	if !strings.Contains(sc.Title, "1 error/timeout") {
		t.Errorf("title %q", sc.Title)
	}
}

func TestShortProc(t *testing.T) {
	if shortProc("a.b.c") != "c" || shortProc("plain") != "plain" {
		t.Error("shortProc misbehaves")
	}
}
