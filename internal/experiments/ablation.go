package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/staticeval"
	"repro/internal/transform"
)

// AblationResult compares the MPAS-A search with and without the §V
// static pre-filter (cast-flow cost model + vectorization report).
type AblationResult struct {
	Unfiltered        core.TableRow
	Filtered          core.TableRow
	DynamicEvalsSame  int     // dynamic evaluations in the unfiltered run
	DynamicEvalsFilt  int     // dynamic evaluations actually run when filtered
	StaticallySkipped int     // variants rejected without dynamic evaluation
	BestUnfiltered    float64 // best speedup found without the filter
	BestFiltered      float64 // best speedup found with the filter
	SameMinimal       bool    // both searches found the same 1-minimal set
}

// filteringEvaluator wraps a Tuner, consulting the static filter first;
// statically rejected variants are scored as failing without a run.
type filteringEvaluator struct {
	tuner  *core.Tuner
	filter *staticeval.Filter

	mu      sync.Mutex
	dynamic int
	skipped int
}

func (f *filteringEvaluator) Evaluate(a transform.Assignment) *search.Evaluation {
	v, err := f.filter.Evaluate(a)
	if err == nil && v.Reject {
		f.mu.Lock()
		f.skipped++
		f.mu.Unlock()
		return &search.Evaluation{
			Assignment: a,
			Status:     search.StatusFail,
			Lowered:    a.Lowered(),
			RelError:   1e30, // sentinel: never accepted
			Detail:     "static filter: " + strings.Join(v.Reasons, "; "),
		}
	}
	f.mu.Lock()
	f.dynamic++
	f.mu.Unlock()
	return f.tuner.Evaluate(a)
}

// Ablation runs the §V static-filter ablation on MPAS-A. ctx cancels
// both searches (nil never cancels).
func Ablation(ctx context.Context, seed int64) (*AblationResult, error) {
	m := models.MPASA()

	// Unfiltered search.
	plain, err := core.New(m, core.Options{Seed: seed, Parallelism: suiteParallelism()})
	if err != nil {
		return nil, err
	}
	plainRes, err := plain.Run(ctx)
	if err != nil {
		return nil, err
	}

	// Filtered search: same tuner machinery, static screen in front.
	tn, err := core.New(m, core.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	bl := tn.BaselineInfo()
	filter := staticeval.NewFilterFromRegions(tn.Program(), bl.Regions, bl.HotspotCycles)
	fe := &filteringEvaluator{tuner: tn, filter: filter}
	criteria := search.Criteria{MaxRelError: bl.Threshold, MinSpeedup: 1.0}
	outcome := search.Precimonious(ctx, fe, tn.Atoms(), search.Options{
		Criteria:       criteria,
		MaxEvaluations: m.BudgetEvals,
		Parallelism:    suiteParallelism(),
	})

	filtRow := core.TableRow{Model: m.Name, Converged: outcome.Converged}
	total, pass, fail, timeout, errs := outcome.Log.Counts()
	filtRow.Total = total
	if total > 0 {
		filtRow.PassPct = 100 * float64(pass) / float64(total)
		filtRow.FailPct = 100 * float64(fail) / float64(total)
		filtRow.TimeoutPct = 100 * float64(timeout) / float64(total)
		filtRow.ErrorPct = 100 * float64(errs) / float64(total)
	}
	bestF := outcome.Log.Best(criteria)
	if bestF != nil {
		filtRow.BestSpeedup = bestF.Speedup
	}

	res := &AblationResult{
		Unfiltered:        plainRes.TableIIRow(),
		Filtered:          filtRow,
		DynamicEvalsSame:  plainRes.TableIIRow().Total,
		DynamicEvalsFilt:  fe.dynamic,
		StaticallySkipped: fe.skipped,
		BestUnfiltered:    plainRes.TableIIRow().BestSpeedup,
		BestFiltered:      filtRow.BestSpeedup,
	}
	res.SameMinimal = sameSet(plainRes.Outcome.Minimal, outcome.Minimal)
	return res, nil
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// RenderAblation formats the ablation.
func RenderAblation(r *AblationResult) string {
	var sb strings.Builder
	sb.WriteString("ABLATION (§V): static pre-filtering of variants before dynamic evaluation\n")
	fmt.Fprintf(&sb, "  unfiltered: %d dynamic evaluations, best %.2fx\n",
		r.DynamicEvalsSame, r.BestUnfiltered)
	fmt.Fprintf(&sb, "  filtered:   %d dynamic evaluations (+%d rejected statically), best %.2fx\n",
		r.DynamicEvalsFilt, r.StaticallySkipped, r.BestFiltered)
	saved := 0.0
	if r.DynamicEvalsSame > 0 {
		saved = 100 * (1 - float64(r.DynamicEvalsFilt)/float64(r.DynamicEvalsSame))
	}
	fmt.Fprintf(&sb, "  dynamic evaluations saved: %.0f%%; same 1-minimal set: %v\n", saved, r.SameMinimal)
	return sb.String()
}
