package experiments

import (
	"fmt"

	"repro/internal/search"
	"repro/internal/viz"
)

// scatterFromPoints builds the speedup-error scatter used by Figures 2,
// 5, and 7, bucketing points by status as the artifact's interactive
// plots do. Failed-to-run variants (error/timeout) have no coordinates
// and are listed in the caption counts only.
func scatterFromPoints(title string, pts []Point, threshold float64) *viz.Scatter {
	var pass, fail []viz.XY
	skipped := 0
	for _, p := range pts {
		xy := viz.XY{
			X: p.Speedup, Y: p.RelErr,
			Label: fmt.Sprintf("#%d: %.1f%% 32-bit, %.3fx, err %.3e (%s)", p.Index, p.Pct32, p.Speedup, p.RelErr, p.Status),
		}
		switch p.Status {
		case search.StatusPass:
			pass = append(pass, xy)
		case search.StatusFail:
			fail = append(fail, xy)
		default:
			skipped++
		}
	}
	return &viz.Scatter{
		Title:  fmt.Sprintf("%s (%d error/timeout variants not plotted)", title, skipped),
		XLabel: "speedup (Eq. 1)",
		YLabel: "relative error",
		YLog:   true,
		Series: []viz.Series{
			{Name: "pass", Color: "#059669", Points: pass},
			{Name: "fail", Color: "#dc2626", Points: fail},
		},
		HLines: []float64{threshold},
		VLines: []float64{1.0},
	}
}

// HTMLFig2 renders the funarc sweep as a standalone HTML page.
func HTMLFig2(r *Fig2Result) string {
	sc := scatterFromPoints("Figure 2: funarc mixed-precision variants", r.Points, r.Threshold)
	var frontier []viz.XY
	for _, p := range r.Frontier {
		frontier = append(frontier, viz.XY{X: p.Speedup, Y: p.RelErr,
			Label: fmt.Sprintf("frontier: %.3fx, err %.3e", p.Speedup, p.RelErr)})
	}
	sc.Series = append(sc.Series, viz.Series{Name: "optimal frontier", Color: "#2563eb", Points: frontier})
	return viz.Page("funarc (paper Fig. 2)", sc.SVG(), viz.Pre(RenderFig2(r)))
}

// HTMLFig5 renders the three hotspot searches as one page.
func HTMLFig5(series []Fig5Series) string {
	sections := make([]string, 0, len(series)+1)
	for _, s := range series {
		sc := scatterFromPoints("Figure 5: "+s.Model+" hotspot variants", s.Points, s.Threshold)
		sections = append(sections, sc.SVG())
	}
	sections = append(sections, viz.Pre(RenderFig5(series)))
	return viz.Page("hotspot variant scatter (paper Fig. 5)", sections...)
}

// HTMLFig6 renders per-procedure per-call speedups, one series per
// procedure, on a log axis as in the paper.
func HTMLFig6(series []Fig6Series) string {
	var sections []string
	cur := ""
	var sc *viz.Scatter
	flush := func() {
		if sc != nil {
			sections = append(sections, sc.SVG())
		}
	}
	for _, s := range series {
		if s.Model != cur {
			flush()
			cur = s.Model
			sc = &viz.Scatter{
				Title:  "Figure 6: " + s.Model + " per-procedure variants",
				XLabel: "unique procedure variant (discovery order)",
				YLabel: "per-call speedup (log)",
				YLog:   true,
				HLines: []float64{1.0},
				Height: 420,
			}
		}
		var xs []viz.XY
		for i, p := range s.Points {
			if p.Speedup <= 0 {
				continue
			}
			xs = append(xs, viz.XY{X: float64(i + 1), Y: p.Speedup,
				Label: fmt.Sprintf("%s: %.3fx (%d vars lowered, from variant #%d)", s.Proc, p.Speedup, p.Lowered, p.FromIndex)})
		}
		sc.Series = append(sc.Series, viz.Series{
			Name:   fmt.Sprintf("%s (%.0f%%)", shortProc(s.Proc), s.ShareePct),
			Points: xs,
		})
	}
	flush()
	sections = append(sections, viz.Pre(RenderFig6(series)))
	return viz.Page("per-procedure performance (paper Fig. 6)", sections...)
}

func shortProc(q string) string {
	for i := len(q) - 1; i >= 0; i-- {
		if q[i] == '.' {
			return q[i+1:]
		}
	}
	return q
}

// HTMLFig7 renders the whole-model-guided search.
func HTMLFig7(r *Fig7Result) string {
	sc := scatterFromPoints("Figure 7: MPAS-A variants, whole-model-guided", r.Points, r.Threshold)
	return viz.Page("whole-model tuning (paper Fig. 7)", sc.SVG(), viz.Pre(RenderFig7(r)))
}
