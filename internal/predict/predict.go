// Package predict implements a lightweight performance predictor for
// mixed-precision variants, the direction the paper closes on:
// "Innovations in search algorithm design which avoid evaluating bad
// variants is needed, such as recent work [42] that uses ML to predict
// the performance and accuracy of mixed-precision programs."
//
// The predictor is an online ridge regression over *static* variant
// features — the same signals the §V recommendations identify
// (mixed-precision flow volume, vectorization report, 32-bit fraction) —
// trained on the variants a search has already paid to evaluate, and
// used to rank candidates before dynamic evaluation.
package predict

import (
	"fmt"
	"math"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

// FeatureCount is the dimensionality of the static feature vector
// (including the bias term).
const FeatureCount = 6

// Features extracts the static feature vector of a precision assignment
// for a given baseline program:
//
//	[ 1, pct32, mismatchedEdges, log1p(castElems), vecLoopDelta, loweredArrays ]
type Extractor struct {
	base    *ft.Program
	model   *perfmodel.Model
	baseVec int
	atoms   map[string]*ft.VarDecl
	nAtoms  int
}

// NewExtractor prepares feature extraction for a baseline program's
// hotspot atoms.
func NewExtractor(base *ft.Program, atoms []transform.Atom, model *perfmodel.Model) *Extractor {
	e := &Extractor{
		base:   base,
		model:  model,
		atoms:  make(map[string]*ft.VarDecl, len(atoms)),
		nAtoms: len(atoms),
	}
	for _, a := range atoms {
		e.atoms[a.QName] = a.Decl
	}
	an := perfmodel.Analyze(base, model)
	e.baseVec, _ = an.VectorizedCount()
	return e
}

// Extract computes the feature vector for an assignment.
func (e *Extractor) Extract(a transform.Assignment) ([FeatureCount]float64, error) {
	var f [FeatureCount]float64
	f[0] = 1 // bias

	lowered, loweredArrays := 0, 0
	for q, kind := range a {
		d, ok := e.atoms[q]
		if !ok {
			continue
		}
		if kind == 4 {
			lowered++
			if d.IsArray() {
				loweredArrays++
			}
		}
	}
	if e.nAtoms > 0 {
		f[1] = float64(lowered) / float64(e.nAtoms)
	}

	variant := ft.Clone(e.base)
	if _, err := ft.Analyze(variant, ft.Options{AllowKindMismatch: true}); err != nil {
		return f, fmt.Errorf("predict: %w", err)
	}
	byName := make(map[string]*ft.VarDecl)
	for _, d := range ft.RealDecls(variant) {
		byName[d.QName()] = d
	}
	for q, kind := range a {
		if d, ok := byName[q]; ok {
			d.Kind = kind
		}
	}
	info, err := ft.Analyze(variant, ft.Options{AllowKindMismatch: true})
	if err != nil {
		return f, fmt.Errorf("predict: %w", err)
	}
	g := transform.BuildFlowGraph(variant, info)
	castElems := 0.0
	for _, edge := range g.MismatchedEdges() {
		f[2]++
		n := float64(edge.Elems)
		if n == 0 {
			n = 64
		}
		castElems += n
	}
	f[3] = math.Log1p(castElems)

	an := perfmodel.Analyze(variant, e.model)
	vec, _ := an.VectorizedCount()
	f[4] = float64(vec - e.baseVec)

	f[5] = float64(loweredArrays)
	return f, nil
}

// Ridge is an incremental ridge-regression model y ≈ w·x, fitted by
// normal equations over all samples seen so far.
type Ridge struct {
	Lambda float64
	xtx    [FeatureCount][FeatureCount]float64
	xty    [FeatureCount]float64
	n      int
}

// NewRidge returns a model with the given L2 regularization strength.
func NewRidge(lambda float64) *Ridge {
	return &Ridge{Lambda: lambda}
}

// Observe adds one (features, target) sample.
func (r *Ridge) Observe(x [FeatureCount]float64, y float64) {
	for i := 0; i < FeatureCount; i++ {
		for j := 0; j < FeatureCount; j++ {
			r.xtx[i][j] += x[i] * x[j]
		}
		r.xty[i] += x[i] * y
	}
	r.n++
}

// Samples returns the number of observations.
func (r *Ridge) Samples() int { return r.n }

// Weights solves (X'X + λI) w = X'y by Gaussian elimination with
// partial pivoting. It returns false if the system is singular even
// after regularization.
func (r *Ridge) Weights() ([FeatureCount]float64, bool) {
	var a [FeatureCount][FeatureCount + 1]float64
	for i := 0; i < FeatureCount; i++ {
		for j := 0; j < FeatureCount; j++ {
			a[i][j] = r.xtx[i][j]
		}
		a[i][i] += r.Lambda
		a[i][FeatureCount] = r.xty[i]
	}
	for col := 0; col < FeatureCount; col++ {
		// Pivot.
		p := col
		for row := col + 1; row < FeatureCount; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[p][col]) {
				p = row
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return [FeatureCount]float64{}, false
		}
		a[col], a[p] = a[p], a[col]
		// Eliminate.
		for row := 0; row < FeatureCount; row++ {
			if row == col {
				continue
			}
			factor := a[row][col] / a[col][col]
			for k := col; k <= FeatureCount; k++ {
				a[row][k] -= factor * a[col][k]
			}
		}
	}
	var w [FeatureCount]float64
	for i := 0; i < FeatureCount; i++ {
		w[i] = a[i][FeatureCount] / a[i][i]
	}
	return w, true
}

// Predict evaluates the fitted model on x.
func (r *Ridge) Predict(x [FeatureCount]float64) (float64, bool) {
	w, ok := r.Weights()
	if !ok {
		return 0, false
	}
	var y float64
	for i := 0; i < FeatureCount; i++ {
		y += w[i] * x[i]
	}
	return y, true
}

// SpearmanRank computes the Spearman rank correlation between two
// parallel slices — the metric used to judge whether the predictor
// *ranks* variants well enough to steer a search (exact values matter
// less than ordering).
func SpearmanRank(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("predict: rank inputs differ in length (%d vs %d)", len(a), len(b))
	}
	n := len(a)
	if n < 3 {
		return 0, fmt.Errorf("predict: need at least 3 samples, have %d", n)
	}
	ra, rb := ranks(a), ranks(b)
	var num, da, db float64
	meanA, meanB := float64(n+1)/2, float64(n+1)/2
	for i := 0; i < n; i++ {
		xa, xb := ra[i]-meanA, rb[i]-meanB
		num += xa * xb
		da += xa * xa
		db += xb * xb
	}
	if da == 0 || db == 0 {
		return 0, fmt.Errorf("predict: constant input has no rank correlation")
	}
	return num / math.Sqrt(da*db), nil
}

// ranks returns 1-based average ranks (ties share the mean rank).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value (n is small in our experiments).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
