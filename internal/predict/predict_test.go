package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/search"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/transform"
)

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	true_ := [FeatureCount]float64{0.5, 2, -1, 0.25, 3, -0.5}
	r := NewRidge(1e-6)
	for i := 0; i < 500; i++ {
		var x [FeatureCount]float64
		x[0] = 1
		for j := 1; j < FeatureCount; j++ {
			x[j] = rng.NormFloat64()
		}
		var y float64
		for j := 0; j < FeatureCount; j++ {
			y += true_[j] * x[j]
		}
		r.Observe(x, y+1e-9*rng.NormFloat64())
	}
	w, ok := r.Weights()
	if !ok {
		t.Fatal("singular system")
	}
	for j := 0; j < FeatureCount; j++ {
		if math.Abs(w[j]-true_[j]) > 1e-3 {
			t.Errorf("w[%d] = %g, want %g", j, w[j], true_[j])
		}
	}
}

func TestRidgeSingularWithoutData(t *testing.T) {
	r := NewRidge(0)
	if _, ok := r.Weights(); ok {
		t.Error("empty model should be singular with zero regularization")
	}
	// Regularization makes it solvable (all-zero weights).
	r2 := NewRidge(1.0)
	if w, ok := r2.Weights(); !ok || w != ([FeatureCount]float64{}) {
		t.Error("regularized empty model should give zero weights")
	}
}

func TestSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if rho, err := SpearmanRank(a, a); err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("identity rho = %v, %v", rho, err)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if rho, _ := SpearmanRank(a, rev); math.Abs(rho+1) > 1e-12 {
		t.Errorf("reversed rho = %v", rho)
	}
	if _, err := SpearmanRank(a, a[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SpearmanRank([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("too-few samples accepted")
	}
	if _, err := SpearmanRank([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant input accepted")
	}
	// Ties share ranks.
	if rho, err := SpearmanRank([]float64{1, 2, 2, 3}, []float64{10, 20, 20, 30}); err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("tied identity rho = %v, %v", rho, err)
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestSpearmanMonotoneInvarianceProperty(t *testing.T) {
	f := func(raw [8]float64, seed int64) bool {
		xs := make([]float64, 0, 8)
		seen := map[float64]bool{}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || seen[v] {
				continue
			}
			seen[v] = true
			xs = append(xs, math.Mod(v, 1e6))
		}
		if len(xs) < 4 {
			return true
		}
		ys := rand.New(rand.NewSource(seed)).Perm(len(xs))
		yf := make([]float64, len(xs))
		for i, p := range ys {
			yf[i] = float64(p)
		}
		r1, err1 := SpearmanRank(xs, yf)
		// exp is strictly monotone; clamp magnitude first.
		tx := make([]float64, len(xs))
		for i, v := range xs {
			tx[i] = math.Tanh(v/1e6) * 3
		}
		r2, err2 := SpearmanRank(tx, yf)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPredictorRanksMPASVariants is the [42]-style experiment: train the
// ridge model on half of a real MPAS-A search's evaluated variants and
// check that it *ranks* the held-out variants' speedups usefully
// (positive rank correlation well above chance).
func TestPredictorRanksMPASVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full search")
	}
	m := models.MPASA()
	tn, err := core.New(m, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	prog := tn.Program()
	ex := NewExtractor(prog, tn.Atoms(), perfmodel.Default())

	type sample struct {
		x [FeatureCount]float64
		y float64
	}
	var all []sample
	for _, ev := range res.Outcome.Log.Evals {
		if ev.Status != search.StatusPass && ev.Status != search.StatusFail {
			continue
		}
		x, err := ex.Extract(ev.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, sample{x, ev.Speedup})
	}
	if len(all) < 10 {
		t.Fatalf("only %d usable samples", len(all))
	}
	half := len(all) / 2
	r := NewRidge(1e-3)
	for _, s := range all[:half] {
		r.Observe(s.x, s.y)
	}
	var pred, actual []float64
	for _, s := range all[half:] {
		p, ok := r.Predict(s.x)
		if !ok {
			t.Fatal("singular predictor")
		}
		pred = append(pred, p)
		actual = append(actual, s.y)
	}
	rho, err := SpearmanRank(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("predictor rank correlation on held-out variants: %.3f (n=%d train, %d test)",
		rho, half, len(all)-half)
	if rho < 0.4 {
		t.Errorf("rank correlation %.3f too weak to steer a search", rho)
	}
}

func TestExtractorFeatures(t *testing.T) {
	m := models.MPASA()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	atoms := transform.Atoms(prog, m.Hotspot)
	ex := NewExtractor(prog, atoms, perfmodel.Default())

	base, err := ex.Extract(transform.Uniform(atoms, 8))
	if err != nil {
		t.Fatal(err)
	}
	if base[0] != 1 || base[1] != 0 || base[2] != 0 || base[4] != 0 {
		t.Errorf("baseline features: %v", base)
	}

	u32, err := ex.Extract(transform.Uniform(atoms, 4))
	if err != nil {
		t.Fatal(err)
	}
	if u32[1] != 1 {
		t.Errorf("uniform-32 pct feature = %v", u32[1])
	}
	if u32[2] == 0 {
		t.Error("uniform-32 must show mismatched boundary edges")
	}

	mixed := transform.Uniform(atoms, 4)
	mixed["atm_time_integration.flux4.ua"] = 8
	mf, err := ex.Extract(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if mf[4] >= 0 {
		t.Errorf("mixed flux variant should lose vectorized loops, delta = %v", mf[4])
	}
}
