package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func eventsHeader() Header { return Header{Fingerprint: Fingerprint("events-test"), Model: "m"} }

// TestEventsAppendReopenReplay: records written to the sidecar come back
// on reopen, with quarantine folding (last wins) and salvage
// deduplication (first wins).
func TestEventsAppendReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	h := eventsHeader()
	e, err := CreateEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	rec1 := Record{AKey: "a1", Index: 0, Status: "pass", Speedup: 1.5}
	rec2 := Record{AKey: "a1", Index: 0, Status: "pass", Speedup: 9.9}
	appends := []EventRecord{
		{Type: EventRetry, AKey: "a1", Attempt: 1, Fault: "boom"},
		{Type: EventQuarantine, AKey: "a2", Attempt: 3, Fault: "first"},
		{Type: EventSalvaged, AKey: "a1", Rec: &rec1},
		{Type: EventSalvaged, AKey: "a1", Rec: &rec2},                    // dup: first wins
		{Type: EventQuarantine, AKey: "a2", Attempt: 4, Fault: "second"}, // last wins
		{Type: EventBreakerTrip, AKey: "a2", Fault: "second"},
	}
	for _, r := range appends {
		if err := e.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := OpenEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := len(e2.Records()); got != len(appends) {
		t.Fatalf("replayed %d records, want %d", got, len(appends))
	}
	q := e2.QuarantinedKeys()
	if len(q) != 1 || q["a2"] != "second" {
		t.Errorf("QuarantinedKeys = %v, want a2 -> second", q)
	}
	s := e2.SalvagedRecords()
	if len(s) != 1 || s[0].Speedup != 1.5 {
		t.Errorf("SalvagedRecords = %+v, want the first a1 record only", s)
	}
	if s[0].Key != RecordKey(h.Fingerprint, "a1") {
		t.Error("salvage payload content key not filled on append")
	}
}

// TestEventsCreateTruncatesStale: a fresh run must not inherit a stale
// quarantine from a previous experiment.
func TestEventsCreateTruncatesStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	h := eventsHeader()
	e, err := CreateEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append(EventRecord{Type: EventQuarantine, AKey: "old", Fault: "stale"}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2, err := CreateEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if len(e2.Records()) != 0 {
		t.Error("CreateEvents kept stale records")
	}
	e2.Close()
	e3, err := OpenEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if q := e3.QuarantinedKeys(); len(q) != 0 {
		t.Errorf("stale quarantine survived re-create: %v", q)
	}
}

// TestEventsOpenMissingCreates: resuming with no sidecar (e.g. the prior
// run was unsupervised) starts a fresh one.
func TestEventsOpenMissingCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	e, err := OpenEvents(path, eventsHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if len(e.Records()) != 0 {
		t.Error("missing sidecar replayed records")
	}
	if _, err := os.Stat(path); err != nil {
		t.Error("sidecar file not created")
	}
}

// TestEventsOpenRejectsForeignFingerprint: a sidecar recorded for a
// different configuration must not leak its quarantines into this run.
func TestEventsOpenRejectsForeignFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	e, err := CreateEvents(path, eventsHeader())
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	other := Header{Fingerprint: Fingerprint("other-config"), Model: "m"}
	if _, err := OpenEvents(path, other); err == nil {
		t.Fatal("foreign-fingerprint sidecar accepted")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestEventsTornTailDropped: a crash mid-append leaves a torn final
// line; reopening drops it and appends continue cleanly.
func TestEventsTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	h := eventsHeader()
	e, err := CreateEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append(EventRecord{Type: EventQuarantine, AKey: "a1", Fault: "kept"}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"quarantine","akey":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, err := OpenEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Records()) != 1 {
		t.Fatalf("replayed %d records, want 1 (torn tail dropped)", len(e2.Records()))
	}
	if err := e2.Append(EventRecord{Type: EventQuarantine, AKey: "a2", Fault: "after"}); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	e3, err := OpenEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	q := e3.QuarantinedKeys()
	if len(q) != 2 || q["a1"] != "kept" || q["a2"] != "after" {
		t.Errorf("after torn-tail recovery, quarantines = %v", q)
	}
}

// TestEventsRejectsCorruptSalvagePayload: a salvage record whose content
// key fails validation (copied from another journal, or corrupt) is
// rejected rather than silently replayed into the warm cache.
func TestEventsRejectsCorruptSalvagePayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	h := eventsHeader()
	e, err := CreateEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{AKey: "a1", Status: "pass", Key: RecordKey("not-this-journal", "a1")}
	if err := e.Append(EventRecord{Type: EventSalvaged, AKey: "a1", Rec: &rec}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := OpenEvents(path, h); err == nil {
		t.Fatal("corrupt salvage payload accepted")
	}
}

// TestEventsWorkerFieldRoundTrip: the fleet worker slot survives the
// wire in its 1-based encoding, so worker 0 is distinguishable from "no
// worker" under omitempty.
func TestEventsWorkerFieldRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	h := eventsHeader()
	e, err := CreateEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	withWorker := EventRecord{Type: "worker_exit", AKey: "a1"}
	withWorker.SetWorker(0)
	withoutWorker := EventRecord{Type: "degraded_to_local"}
	withoutWorker.SetWorker(-1)
	for _, r := range []EventRecord{withWorker, withoutWorker} {
		if err := e.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := OpenEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recs := e2.Records()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if got := recs[0].WorkerID(); got != 0 {
		t.Errorf("worker 0 round-tripped as %d", got)
	}
	if got := recs[1].WorkerID(); got >= 0 {
		t.Errorf("no-worker event reports worker %d", got)
	}
	// Worker 0 must actually occupy bytes on the wire (omitempty would
	// silently drop a 0-valued field).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"worker":1`) {
		t.Error("worker 0 not encoded on the wire")
	}
}

// TestEventsSyncModes pins the durability contract: SyncEveryAppend is
// the default, and SyncOnClose still writes every record through to the
// OS immediately — a process crash loses nothing, only a machine crash
// can cost unsynced records.
func TestEventsSyncModes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.events")
	h := eventsHeader()
	e, err := CreateEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	e.SetSyncMode(SyncOnClose)
	if err := e.Append(EventRecord{Type: EventRetry, AKey: "a1", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	// Without Close (the process-crash case): the record is visible to a
	// fresh open because writes go straight to the file.
	e2, err := OpenEvents(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e2.Records()); got != 1 {
		t.Errorf("after relaxed-mode append without close: %d records, want 1", got)
	}
	e2.Close()
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The default mode is the synced one: a fresh log needs no SetSyncMode
	// call to get main-journal durability.
	var fresh EventLog
	if fresh.mode != SyncEveryAppend {
		t.Error("zero-value sync mode is not SyncEveryAppend")
	}
}
