package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// EventsKind identifies the resilience-events sidecar file format.
const EventsKind = "prose-resilience-events"

// EventsPath returns the conventional events-sidecar path for a journal.
func EventsPath(journalPath string) string { return journalPath + ".events" }

// Event record types. Retry/quarantine/breaker records mirror
// resilience.Event; salvaged records carry a full evaluation Record
// rescued from an aborted batch.
//
// The worker fleet appends its own vocabulary to the same sidecar
// (see internal/fleet: lease_grant, worker_exit, …, and the network
// transport's worker_reconnect, partition_expired, dup_refused) —
// this package treats types it does not know as opaque, so the fleet
// can grow events without touching the journal layer.
const (
	EventRetry        = "retry"
	EventQuarantine   = "quarantine"
	EventBreakerTrip  = "breaker_trip"
	EventWatchdog     = "watchdog"
	EventBreakerOpen  = "breaker_open"
	EventBreakerProbe = "breaker_probe"
	EventBreakerClose = "breaker_close"
	EventSalvaged     = "salvaged"
	// EventCancelled records an orderly shutdown — a SIGINT/SIGTERM or
	// an expired wall-clock budget. It lives in the sidecar, never the
	// journal proper: an interrupted-then-resumed run must still produce
	// a byte-identical evaluation journal.
	EventCancelled = "cancelled"
)

// EventRecord is one journaled resilience event (one JSON line of the
// events sidecar).
//
// The sidecar exists precisely because these records must NOT live in
// the evaluation journal proper: the journal of a run that absorbed
// transient faults is byte-identical to a fault-free run's, so retry
// noise is kept out-of-band. Two record types carry resume-critical
// state:
//
//   - quarantine: the assignment is poisoned; a resumed supervisor
//     preloads it and answers StatusInfra without re-crashing.
//   - salvaged: a completed evaluation whose deterministic journal slot
//     was never reached because an earlier slot aborted; a resumed
//     search serves it from the warm cache and journals it at its
//     proper index, so the paid-for work is not repeated.
type EventRecord struct {
	Type string `json:"type"`
	// AKey is the canonical assignment key the event concerns.
	AKey string `json:"akey,omitempty"`
	// Attempt is the faulted attempt (retry) or total attempts spent
	// (quarantine).
	Attempt int `json:"attempt,omitempty"`
	// Fault is the rendered fault value.
	Fault string `json:"fault,omitempty"`
	// Kind is the fault's class label (retry/quarantine/watchdog
	// events), so telemetry can aggregate per class without re-deriving
	// the classification.
	Kind string `json:"kind,omitempty"`
	// BackoffNS is the backoff delay in nanoseconds slept before a retry
	// (retry events only).
	BackoffNS int64 `json:"backoff_ns,omitempty"`
	// Worker is the fleet worker slot the event concerns (fleet events
	// only; 1-based on the wire — see EventRecord.SetWorker — so worker
	// 0 survives omitempty).
	Worker int `json:"worker,omitempty"`
	// Rec is the salvaged evaluation (EventSalvaged only).
	Rec *Record `json:"rec,omitempty"`
}

// SetWorker records a fleet worker slot ID (0-based, -1 = none) in the
// 1-based wire encoding.
func (r *EventRecord) SetWorker(id int) {
	if id >= 0 {
		r.Worker = id + 1
	}
}

// WorkerID returns the 0-based fleet worker slot ID, or -1 if the
// event carries none.
func (r *EventRecord) WorkerID() int { return r.Worker - 1 }

// SyncMode selects the sidecar's append durability — an explicit,
// test-pinned contract rather than an accident of implementation.
type SyncMode int

const (
	// SyncEveryAppend fsyncs after every record: the main journal's
	// durability, and the default. Resume-critical records (quarantine,
	// salvage) and the fleet coordinator's lease/restart/degrade trail
	// need it — a quarantine acknowledged in memory but lost to a crash
	// would let the next run re-crash on the same poisoned assignment.
	SyncEveryAppend SyncMode = iota
	// SyncOnClose writes each record to the OS immediately (so it
	// survives a *process* crash) but fsyncs only on Close/Sync: records
	// since the last sync can be lost to a machine crash or power cut.
	// Acceptable only for bulk telemetry nobody resumes from.
	SyncOnClose
)

// EventLog is an open events sidecar. Append is safe for concurrent
// use: the supervisor emits events from evaluation workers.
type EventLog struct {
	path    string
	header  Header
	mu      sync.Mutex
	f       *os.File
	mode    SyncMode
	records []EventRecord
}

// SetSyncMode selects the append durability (default SyncEveryAppend).
func (e *EventLog) SetSyncMode(m SyncMode) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mode = m
}

// Sync forces buffered appends to stable storage (meaningful under
// SyncOnClose; a no-op after every append under SyncEveryAppend).
func (e *EventLog) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil
	}
	return e.f.Sync()
}

// Path returns the event log's file path.
func (e *EventLog) Path() string { return e.path }

// Records returns the records replayed when the log was opened.
func (e *EventLog) Records() []EventRecord { return e.records }

// QuarantinedKeys folds the replayed records into the quarantine map:
// assignment key -> rendered fault (last quarantine wins).
func (e *EventLog) QuarantinedKeys() map[string]string {
	out := make(map[string]string)
	for _, r := range e.records {
		if r.Type == EventQuarantine {
			out[r.AKey] = r.Fault
		}
	}
	return out
}

// SalvagedRecords returns the salvaged evaluation records replayed when
// the log was opened, in append order (deduplicated by assignment key,
// first wins — salvage order is deterministic batch order).
func (e *EventLog) SalvagedRecords() []Record {
	seen := make(map[string]bool)
	var out []Record
	for _, r := range e.records {
		if r.Type != EventSalvaged || r.Rec == nil || seen[r.Rec.AKey] {
			continue
		}
		seen[r.Rec.AKey] = true
		out = append(out, *r.Rec)
	}
	return out
}

func fillEventsHeader(h *Header) {
	h.Kind = EventsKind
	h.Version = Version
}

// CreateEvents starts a fresh events sidecar at path, truncating any
// prior file: unlike the evaluation journal, events are derived
// observability/resume state, and a fresh run must not inherit a stale
// quarantine from an earlier experiment.
func CreateEvents(path string, h Header) (*EventLog, error) {
	fillEventsHeader(&h)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	e := &EventLog{path: path, header: h, f: f}
	if err := e.writeLine(h); err != nil {
		f.Close()
		return nil, err
	}
	return e, nil
}

// OpenEvents opens the events sidecar at path for resumption,
// validating its header against want exactly as Open validates the
// evaluation journal. A missing file starts a fresh sidecar. A
// truncated final line — a crash mid-append — is dropped and the file
// truncated back to the last complete record.
func OpenEvents(path string, want Header) (*EventLog, error) {
	fillEventsHeader(&want)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return CreateEvents(path, want)
	}
	if err != nil {
		return nil, err
	}
	h, recs, err := parseEvents(raw)
	if err != nil {
		return nil, fmt.Errorf("journal: events %s: %w", path, err)
	}
	if h.Kind != want.Kind || h.Version != want.Version {
		return nil, fmt.Errorf("journal: %s is not a %s v%d file (found %q v%d)",
			path, want.Kind, want.Version, h.Kind, h.Version)
	}
	if h.Fingerprint != want.Fingerprint {
		return nil, fmt.Errorf("journal: events %s were recorded for a different configuration (fingerprint %.12s..., want %.12s...) — remove the sidecar or restore the original configuration",
			path, h.Fingerprint, want.Fingerprint)
	}
	goodLen := completeLen(raw)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(goodLen)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(goodLen), 0); err != nil {
		f.Close()
		return nil, err
	}
	return &EventLog{path: path, header: h, f: f, records: recs}, nil
}

// parseEvents splits raw sidecar bytes into header and complete
// records, ignoring a truncated trailing line. Salvaged payloads are
// integrity-checked like journal records (content key over fingerprint
// and assignment key); indices are not checked — events interleave
// nondeterministically under parallel evaluation.
func parseEvents(raw []byte) (Header, []EventRecord, error) {
	sc := bufio.NewScanner(strings.NewReader(string(raw[:completeLen(raw)])))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		return Header{}, nil, fmt.Errorf("empty events file")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return Header{}, nil, fmt.Errorf("bad header: %w", err)
	}
	var recs []EventRecord
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r EventRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return Header{}, nil, fmt.Errorf("bad event %d: %w", len(recs)+1, err)
		}
		if r.Rec != nil && r.Rec.Key != RecordKey(h.Fingerprint, r.Rec.AKey) {
			return Header{}, nil, fmt.Errorf("event %d salvage payload fails its content-key check (corrupt or copied from another journal)", len(recs)+1)
		}
		recs = append(recs, r)
	}
	return h, recs, nil
}

// Append serializes one event record and appends it as a line. Under
// the default SyncEveryAppend mode it fsyncs before returning: a
// quarantine acknowledged here must survive the very crash it protects
// the next run from, and a fleet lease/restart/degrade trail must
// survive the coordinator dying mid-tune.
func (e *EventLog) Append(r EventRecord) error {
	if r.Rec != nil && r.Rec.Key == "" {
		r.Rec.Key = RecordKey(e.header.Fingerprint, r.Rec.AKey)
	}
	return e.writeLine(r)
}

func (e *EventLog) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return fmt.Errorf("journal: events %s is closed", e.path)
	}
	if _, err := e.f.Write(b); err != nil {
		return fmt.Errorf("journal: append to %s: %w", e.path, err)
	}
	if e.mode == SyncEveryAppend {
		if err := e.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync %s: %w", e.path, err)
		}
	}
	return nil
}

// Close fsyncs any buffered appends and releases the sidecar file
// handle.
func (e *EventLog) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil
	}
	syncErr := e.f.Sync()
	err := e.f.Close()
	e.f = nil
	if err == nil {
		err = syncErr
	}
	return err
}
