package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is an atomic snapshot of search progress, written alongside
// the journal (at <journal>.ckpt by convention). The journal alone is
// sufficient to resume — the checkpoint is the cheap-to-read summary a
// scheduler or operator polls to decide whether a job finished, and a
// cross-check that the journal is not a forgery of a different run.
type Checkpoint struct {
	Fingerprint string `json:"fingerprint"`
	Model       string `json:"model,omitempty"`
	// Evaluations is the number of journal records at save time. After
	// a crash it may lag the journal (never lead it): the journal is
	// fsync'd before the checkpoint is rewritten.
	Evaluations int `json:"evaluations"`
	// Done marks a completed search; Converged and Minimal are only
	// meaningful once Done.
	Done      bool     `json:"done"`
	Converged bool     `json:"converged"`
	Minimal   []string `json:"minimal,omitempty"`
}

// CheckpointPath returns the conventional checkpoint path for a journal.
func CheckpointPath(journalPath string) string { return journalPath + ".ckpt" }

// SaveCheckpoint atomically replaces the checkpoint at path: the new
// state is written to a temporary file in the same directory, fsync'd,
// and renamed over the old one, so a crash leaves either the previous
// checkpoint or the new one — never a torn file.
func SaveCheckpoint(path string, c Checkpoint) error {
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Make the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads the checkpoint at path. A missing file returns
// ok=false with no error (a journal may predate its first checkpoint).
func LoadCheckpoint(path string) (Checkpoint, bool, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, err
	}
	var c Checkpoint
	if err := json.Unmarshal(raw, &c); err != nil {
		return Checkpoint{}, false, fmt.Errorf("journal: checkpoint %s: %w", path, err)
	}
	return c, true, nil
}

// ValidateCheckpoint cross-checks a loaded checkpoint against the open
// journal it accompanies.
func ValidateCheckpoint(c Checkpoint, j *Journal) error {
	if c.Fingerprint != j.Header().Fingerprint {
		return fmt.Errorf("journal: checkpoint fingerprint %.12s... does not match journal %.12s...", c.Fingerprint, j.Header().Fingerprint)
	}
	if c.Evaluations > len(j.Records()) {
		return fmt.Errorf("journal: checkpoint claims %d evaluations but journal holds %d (journal truncated beyond the last checkpoint)", c.Evaluations, len(j.Records()))
	}
	return nil
}
