package journal

import (
	"fmt"
	"os"
)

// Inspect reads a journal file without opening it for appending and
// without knowing the expected fingerprint: records are still
// integrity-checked against the header's own fingerprint (content keys,
// contiguous indices) and a torn trailing line is ignored, but nothing
// is validated against a caller-supplied configuration. This is the
// entry point for offline tooling (prose journal) that examines a
// journal it did not create.
func Inspect(path string) (Header, []Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	h, recs, err := parse(raw)
	if err != nil {
		return Header{}, nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	if h.Kind != Kind || h.Version != Version {
		return Header{}, nil, fmt.Errorf("journal: %s is not a %s v%d file (found %q v%d)",
			path, Kind, Version, h.Kind, h.Version)
	}
	return h, recs, nil
}

// InspectEvents reads an events sidecar the same way Inspect reads a
// journal: read-only, torn tail dropped, salvage payloads checked
// against the sidecar's own fingerprint, no caller-side validation.
func InspectEvents(path string) (Header, []EventRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	h, recs, err := parseEvents(raw)
	if err != nil {
		return Header{}, nil, fmt.Errorf("journal: events %s: %w", path, err)
	}
	if h.Kind != EventsKind || h.Version != Version {
		return Header{}, nil, fmt.Errorf("journal: %s is not a %s v%d file (found %q v%d)",
			path, EventsKind, Version, h.Kind, h.Version)
	}
	return h, recs, nil
}
