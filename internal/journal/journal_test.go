package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/transform"
)

func TestFingerprintLengthPrefixed(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("different part splits of the same bytes collide")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint("x") == Fingerprint("y") {
		t.Error("distinct inputs collide")
	}
}

func mkHeader(fp string) Header {
	return Header{Fingerprint: fp, Model: "fake"}
}

func mkRecord(fp string, idx int) Record {
	akey := fmt.Sprintf("m.p.v%02d;", idx)
	return Record{
		Key: RecordKey(fp, akey), AKey: akey, Index: idx,
		Status: "pass", Speedup: 1.5, RelError: 1e-7, Lowered: idx, TotalAtoms: 8,
	}
}

func TestAppendReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(mkRecord("fp1", i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, err := Open(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Index != i+1 || r.Status != "pass" || r.Speedup != 1.5 {
			t.Errorf("record %d corrupted on round-trip: %+v", i, r)
		}
	}
	// Appending after reopen continues the sequence.
	if err := j2.Append(mkRecord("fp1", 4)); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(j3.Records()) != 4 {
		t.Errorf("after reopen+append: %d records, want 4", len(j3.Records()))
	}
}

func TestCreateRefusesExistingRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(mkRecord("fp1", 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Create(path, mkHeader("fp1")); err == nil {
		t.Error("Create overwrote a journal holding evaluations")
	}
	// A header-only journal (no evaluations lost) may be recreated.
	empty := filepath.Join(t.TempDir(), "e.jsonl")
	je, err := Create(empty, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	je.Close()
	if _, err := Create(empty, mkHeader("fp2")); err != nil {
		t.Errorf("Create refused a record-free journal: %v", err)
	}
}

func TestOpenMissingCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.jsonl")
	j, err := Open(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(j.Records()) != 0 {
		t.Error("fresh journal has records")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("journal file not created: %v", err)
	}
}

func TestOpenRejectsStaleFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, mkHeader("fp-old"))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = Open(path, mkHeader("fp-new"))
	if err == nil {
		t.Fatal("stale journal accepted")
	}
	if !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("unhelpful stale-journal error: %v", err)
	}
}

func TestOpenDropsTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := j.Append(mkRecord("fp1", i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate a crash mid-append: a torn partial line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"deadbeef","akey":"m.p.v0`)
	f.Close()

	j2, err := Open(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Records()) != 2 {
		t.Fatalf("replayed %d records, want 2 (torn tail dropped)", len(j2.Records()))
	}
	// Appending continues cleanly from the truncated point.
	if err := j2.Append(mkRecord("fp1", 3)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path, mkHeader("fp1"))
	if err != nil {
		t.Fatalf("journal unreadable after torn-tail recovery: %v", err)
	}
	defer j3.Close()
	if len(j3.Records()) != 3 {
		t.Errorf("%d records after recovery+append, want 3", len(j3.Records()))
	}
}

func TestOpenRejectsCorruptRecordKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	r := mkRecord("fp1", 1)
	r.Key = RecordKey("other-fp", r.AKey) // copied from another journal
	if err := j.Append(r); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(path, mkHeader("fp1")); err == nil {
		t.Error("record with a foreign content key accepted")
	}
}

func TestOpenRejectsSplicedIndices(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(mkRecord("fp1", 2)); err != nil { // starts at 2, not 1
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(path, mkHeader("fp1")); err == nil {
		t.Error("journal with non-contiguous indices accepted")
	}
}

func TestCheckpointRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j.jsonl")
	cpath := CheckpointPath(jpath)
	if cpath != jpath+".ckpt" {
		t.Errorf("checkpoint path %q", cpath)
	}
	if _, ok, err := LoadCheckpoint(cpath); err != nil || ok {
		t.Fatalf("missing checkpoint: ok=%v err=%v", ok, err)
	}
	c := Checkpoint{Fingerprint: "fp1", Model: "fake", Evaluations: 2, Done: true, Converged: true, Minimal: []string{"m.p.v01"}}
	if err := SaveCheckpoint(cpath, c); err != nil {
		t.Fatal(err)
	}
	// Atomic replacement: a second save fully replaces the first.
	c.Evaluations = 5
	if err := SaveCheckpoint(cpath, c); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCheckpoint(cpath)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got.Evaluations != 5 || !got.Done || !got.Converged || len(got.Minimal) != 1 {
		t.Errorf("checkpoint round-trip: %+v", got)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}

	j, err := Create(jpath, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := j.Append(mkRecord("fp1", i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, err := Open(jpath, mkHeader("fp1"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// Checkpoint claims 5 evaluations but the journal holds 2.
	if err := ValidateCheckpoint(got, j2); err == nil {
		t.Error("checkpoint leading the journal accepted")
	}
	got.Evaluations = 2
	if err := ValidateCheckpoint(got, j2); err != nil {
		t.Errorf("consistent checkpoint rejected: %v", err)
	}
	got.Fingerprint = "other"
	if err := ValidateCheckpoint(got, j2); err == nil {
		t.Error("foreign checkpoint accepted")
	}
}

func TestRecordEvaluationRoundTrip(t *testing.T) {
	ev := &search.Evaluation{
		Assignment: transform.Assignment{"m.p.x": 4, "m.p.y": 8},
		Status:     search.StatusTimeout,
		Speedup:    1.0625, RelError: 3.14e-9,
		Lowered: 1, TotalAtoms: 2, Detail: "wrappers=2 casts=7", Index: 9,
	}
	r := FromEvaluation("fp", ev)
	if r.AKey != ev.Assignment.Key() || r.Key != RecordKey("fp", r.AKey) {
		t.Errorf("record keys wrong: %+v", r)
	}
	back, err := r.Evaluation()
	if err != nil {
		t.Fatal(err)
	}
	if back.Status != ev.Status || back.Speedup != ev.Speedup || back.RelError != ev.RelError ||
		back.Lowered != ev.Lowered || back.TotalAtoms != ev.TotalAtoms ||
		back.Detail != ev.Detail || back.Index != ev.Index {
		t.Errorf("evaluation round-trip lost data: %+v vs %+v", back, ev)
	}
	r.Status = "exploded"
	if _, err := r.Evaluation(); err == nil {
		t.Error("unknown status accepted")
	}
}
