// Package journal provides the crash-safety layer of the tuning cycle:
// an append-only JSONL evaluation journal plus an atomic checkpoint of
// search state.
//
// The paper's MOM6 search died on Derecho's 12-hour job limit and lost
// every evaluated variant (§IV-B, Table II). Each variant evaluation is
// an expensive artifact — transform, compile, run — so the journal
// treats it as one: every distinct evaluation is serialized as a single
// JSON line and fsync'd before the search proceeds. A killed run leaves
// a journal whose records are exactly the completed prefix of the
// deterministic evaluation order; reopening it warm-starts the search
// (see search.Options.Warm), which replays to the point of death without
// re-running anything and then continues. The resumed journal is
// byte-identical to the journal of an uninterrupted run.
//
// Journal layout:
//
//	line 1:  Header  — format kind/version plus a baseline fingerprint
//	line 2+: Record  — one evaluation each, in evaluation-log order
//
// The fingerprint is a content hash over everything that shapes the
// evaluation stream (program source, machine model, noise seed, search
// options); Open rejects a journal whose fingerprint does not match
// instead of silently reusing stale results from a different program or
// seed. Each record is additionally keyed by a content hash of the
// fingerprint and the variant's canonical assignment key, so records
// remain self-validating when copied between files.
//
// A crash can leave a truncated final line; Open drops it and truncates
// the file back to the last complete record, so appends continue cleanly.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/search"
)

// Kind identifies the journal file format.
const Kind = "prose-evaluation-journal"

// Version is the current journal format version.
const Version = 1

// Header is the first line of a journal file.
type Header struct {
	Kind        string `json:"kind"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Model       string `json:"model,omitempty"`
}

// Record is one journaled variant evaluation (one JSON line).
type Record struct {
	// Key is RecordKey(header fingerprint, AKey): a content hash tying
	// the record to both the baseline configuration and the variant.
	Key string `json:"key"`
	// AKey is the variant's canonical assignment key
	// (transform.Assignment.Key()).
	AKey       string  `json:"akey"`
	Index      int     `json:"index"` // 1-based evaluation-log order
	Status     string  `json:"status"`
	Speedup    float64 `json:"speedup"`
	RelError   float64 `json:"rel_error"`
	Lowered    int     `json:"lowered"`
	TotalAtoms int     `json:"total_atoms"`
	Detail     string  `json:"detail,omitempty"`
}

// Fingerprint hashes the given parts into a hex digest. Parts are
// length-prefixed, so no concatenation of parts collides with another
// split of the same bytes.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RecordKey hashes a journal fingerprint and a canonical assignment key
// into the per-record content key.
func RecordKey(fingerprint, akey string) string {
	h := sha256.Sum256([]byte(fingerprint + "\x00" + akey))
	return hex.EncodeToString(h[:16])
}

var statusFromName = map[string]search.Status{
	search.StatusPass.String():    search.StatusPass,
	search.StatusFail.String():    search.StatusFail,
	search.StatusTimeout.String(): search.StatusTimeout,
	search.StatusError.String():   search.StatusError,
	search.StatusInfra.String():   search.StatusInfra,
}

// FromEvaluation converts a search evaluation to its journal record.
func FromEvaluation(fingerprint string, ev *search.Evaluation) Record {
	akey := ev.Assignment.Key()
	return Record{
		Key:        RecordKey(fingerprint, akey),
		AKey:       akey,
		Index:      ev.Index,
		Status:     ev.Status.String(),
		Speedup:    ev.Speedup,
		RelError:   ev.RelError,
		Lowered:    ev.Lowered,
		TotalAtoms: ev.TotalAtoms,
		Detail:     ev.Detail,
	}
}

// Evaluation converts a record back to a search evaluation. The
// Assignment field is left nil: a warm-started search re-proposes the
// assignment itself and attaches it when the record is replayed.
func (r Record) Evaluation() (*search.Evaluation, error) {
	st, ok := statusFromName[r.Status]
	if !ok {
		return nil, fmt.Errorf("journal: record %d has unknown status %q", r.Index, r.Status)
	}
	return &search.Evaluation{
		Status:     st,
		Speedup:    r.Speedup,
		RelError:   r.RelError,
		Lowered:    r.Lowered,
		TotalAtoms: r.TotalAtoms,
		Detail:     r.Detail,
		Index:      r.Index,
	}, nil
}

// Journal is an open journal file. Append is safe for concurrent use.
type Journal struct {
	path    string
	header  Header
	mu      sync.Mutex
	f       *os.File
	records []Record
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Header returns the journal's header.
func (j *Journal) Header() Header { return j.header }

// Records returns the records replayed when the journal was opened.
// Records appended later are not included.
func (j *Journal) Records() []Record { return j.records }

// Create starts a fresh journal at path, writing and fsyncing the
// header. It refuses to overwrite an existing journal that already
// holds evaluation records — resuming (Open) or removing the file is an
// explicit decision the caller must make.
func Create(path string, h Header) (*Journal, error) {
	fillHeader(&h)
	if existing, err := os.ReadFile(path); err == nil {
		if strings.TrimSpace(string(existing)) != "" {
			if _, recs, err := parse(existing); err == nil && len(recs) > 0 {
				return nil, fmt.Errorf("journal: %s already holds %d evaluation(s); resume it or remove it", path, len(recs))
			}
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, header: h, f: f}
	if err := j.writeLine(h); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Open opens the journal at path for resumption, validating its header
// against want (a fingerprint mismatch means the journal belongs to a
// different program, machine model, seed, or search configuration and
// is rejected). A missing file starts a fresh journal, so resuming is
// safe on the very first run. A truncated final line — the signature of
// a crash mid-append — is dropped and the file truncated back to the
// last complete record.
func Open(path string, want Header) (*Journal, error) {
	fillHeader(&want)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Create(path, want)
	}
	if err != nil {
		return nil, err
	}
	h, recs, err := parse(raw)
	if err != nil {
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	if h.Kind != want.Kind || h.Version != want.Version {
		return nil, fmt.Errorf("journal: %s is not a %s v%d file (found %q v%d)",
			path, want.Kind, want.Version, h.Kind, h.Version)
	}
	if h.Fingerprint != want.Fingerprint {
		return nil, fmt.Errorf("journal: %s was recorded for a different configuration (model %q, fingerprint %.12s..., want %.12s...): the program source, machine model, seed, or search options changed — remove the journal or restore the original configuration",
			path, h.Model, h.Fingerprint, want.Fingerprint)
	}
	// Reopen for appending, truncated to the last complete record.
	goodLen := completeLen(raw)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(goodLen)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(goodLen), 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{path: path, header: h, f: f, records: recs}, nil
}

// fillHeader applies the format constants.
func fillHeader(h *Header) {
	h.Kind = Kind
	h.Version = Version
}

// parse splits raw journal bytes into header and complete records,
// ignoring a truncated trailing line. Records are integrity-checked:
// their content keys must match the header fingerprint and their
// indices must be contiguous from 1.
func parse(raw []byte) (Header, []Record, error) {
	sc := bufio.NewScanner(strings.NewReader(string(raw[:completeLen(raw)])))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		return Header{}, nil, fmt.Errorf("empty journal")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return Header{}, nil, fmt.Errorf("bad header: %w", err)
	}
	var recs []Record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return Header{}, nil, fmt.Errorf("bad record %d: %w", len(recs)+1, err)
		}
		if r.Key != RecordKey(h.Fingerprint, r.AKey) {
			return Header{}, nil, fmt.Errorf("record %d fails its content-key check (corrupt or copied from another journal)", len(recs)+1)
		}
		if r.Index != len(recs)+1 {
			return Header{}, nil, fmt.Errorf("record %d has index %d (journal reordered or spliced)", len(recs)+1, r.Index)
		}
		recs = append(recs, r)
	}
	return h, recs, nil
}

// completeLen returns the length of raw up to and including its last
// newline: everything after it is a torn partial write.
func completeLen(raw []byte) int {
	for i := len(raw) - 1; i >= 0; i-- {
		if raw[i] == '\n' {
			return i + 1
		}
	}
	return 0
}

// Append serializes one record, appends it as a line, and fsyncs before
// returning, so a record acknowledged here survives any later crash.
func (j *Journal) Append(r Record) error {
	if r.Key == "" {
		r.Key = RecordKey(j.header.Fingerprint, r.AKey)
	}
	return j.writeLine(r)
}

func (j *Journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal: append to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync %s: %w", j.path, err)
	}
	return nil
}

// Close releases the journal file. Appended records are already
// durable; Close only invalidates the handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
