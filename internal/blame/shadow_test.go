package blame

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

// TestShadowAnalyzeMatchesAnalyzeOnFunarc: the one-run shadow ranking
// must agree with the N-run one-at-a-time Analyze on the atom that
// matters — funarc's accumulator s1, whose divergence grows over the
// 10000-iteration loop while every other atom only contributes
// per-step rounding noise.
func TestShadowAnalyzeMatchesAnalyzeOnFunarc(t *testing.T) {
	m := models.Funarc()
	sh, err := ShadowAnalyze(m, ShadowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sh.RunFailure != "" {
		t.Fatalf("instrumented funarc run failed: %s", sh.RunFailure)
	}
	if len(sh.Atoms) != 8 {
		t.Fatalf("ranked %d atoms, want 8", len(sh.Atoms))
	}

	ref, err := Analyze(m, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sh.Top(1)[0], ref.Top(1)[0]; got != want {
		t.Errorf("shadow top atom %s, Analyze top atom %s\nshadow:\n%s\nanalyze:\n%s",
			got, want, sh.Render(8), ref.Render(8))
	}
	if got := sh.Top(1)[0]; got != "funarc_mod.funarc.s1" {
		t.Errorf("top shadow atom %s, want funarc s1", got)
	}
	// funarc's (t2-t1)**2 at the arc-length accumulation is the
	// textbook catastrophic cancellation; one instrumented run must
	// surface at least one such site.
	if sh.Profile.Catastrophic < 1 {
		t.Errorf("catastrophic cancellations = %d, want >= 1\n%s",
			sh.Profile.Catastrophic, sh.Profile.Render(10))
	}
	t.Logf("\n%s", sh.Render(8))
}

func TestShadowReportJSONRoundTrip(t *testing.T) {
	sh, err := ShadowAnalyze(models.Funarc(), ShadowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(sh)
	if err != nil {
		t.Fatal(err)
	}
	var back ShadowReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sh, &back) {
		t.Error("ShadowReport does not survive a JSON round-trip")
	}
}

// TestRankAtomsTieDeterminism pins the Analyze tie-break: equal blame
// scores order by QName, independent of input order.
func TestRankAtomsTieDeterminism(t *testing.T) {
	a := []AtomReport{
		{QName: "m.p.zeta", Blame: 0},
		{QName: "m.p.alpha", Blame: 0},
		{QName: "m.p.top", Blame: 1e-3},
		{QName: "m.p.mid", Blame: 0},
	}
	b := []AtomReport{a[3], a[0], a[2], a[1]}
	rankAtoms(a)
	rankAtoms(b)
	want := []string{"m.p.top", "m.p.alpha", "m.p.mid", "m.p.zeta"}
	for i, w := range want {
		if a[i].QName != w || b[i].QName != w {
			t.Fatalf("rank %d: got %s / %s, want %s (tie not broken by QName)",
				i, a[i].QName, b[i].QName, w)
		}
	}
}
