package blame

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/interp"
	"repro/internal/models"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

// ShadowOptions configures a shadow-execution blame analysis.
type ShadowOptions struct {
	// Numerics configures the recorder (cancellation threshold).
	Numerics numerics.Options
	// Assignment is the precision assignment to instrument; nil lowers
	// every hotspot atom to kind 4 (the all-float32 stress run, where
	// every error source is active at once).
	Assignment transform.Assignment
	// Machine prices operations (nil = perfmodel.Default()).
	Machine *perfmodel.Model
}

// ShadowAtom is one atom's error observed in the instrumented run.
type ShadowAtom struct {
	QName string `json:"qname"`
	// Score ranks the atom: the worst relative divergence between the
	// mixed-precision lane and the float64 shadow seen at any
	// assignment to it. Accumulating atoms (sums over many iterations)
	// grow this; per-step rounding noise does not.
	Score         float64 `json:"score"`
	Assigns       int64   `json:"assigns"`
	RoundErr      float64 `json:"round_err"`
	Cancellations int64   `json:"cancellations"`
	Catastrophic  int64   `json:"catastrophic"`
}

// ShadowReport is a completed shadow blame analysis.
type ShadowReport struct {
	Model      string `json:"model"`
	Lowered    int    `json:"lowered"`
	TotalAtoms int    `json:"total_atoms"`
	// RunFailure is set when the instrumented run died (non-finite
	// trapping is off, but bounds/budget failures still abort); the
	// profile covers everything up to the failure — often exactly the
	// diagnostic wanted.
	RunFailure string            `json:"run_failure,omitempty"`
	Profile    *numerics.Profile `json:"profile"`
	Atoms      []ShadowAtom      `json:"atoms"`
}

// ShadowAnalyze ranks the model's hotspot atoms from ONE instrumented
// run: the assignment (default all-kind-4) executes with a float64
// shadow lane, and each atom is scored by the divergence observed at
// its own assignments. It is the one-run counterpart of Analyze — the
// paper's §VII guidance-only tools (ADAPT, Blame Analysis) work this
// way — and costs one evaluation instead of one per atom.
func ShadowAnalyze(m *models.Model, opts ShadowOptions) (*ShadowReport, error) {
	machine := opts.Machine
	if machine == nil {
		machine = perfmodel.Default()
	}
	prog, err := m.Parse()
	if err != nil {
		return nil, err
	}
	atoms := transform.Atoms(prog, m.Hotspot)
	if len(atoms) == 0 {
		return nil, fmt.Errorf("blame: model %s has no tunable atoms in module %q", m.Name, m.Hotspot)
	}
	a := opts.Assignment
	if a == nil {
		a = transform.Uniform(atoms, 4)
	}

	// Plain baseline run bounds the instrumented run's cycle budget
	// (3x, as for tuner evaluations).
	base, err := interp.New(prog, interp.Config{Model: machine, TrapNonFinite: true})
	if err != nil {
		return nil, err
	}
	bres, err := base.Run()
	if err != nil {
		return nil, fmt.Errorf("blame: %s baseline run failed: %w", m.Name, err)
	}

	v, err := transform.Apply(prog, a)
	if err != nil {
		return nil, fmt.Errorf("blame: transform: %w", err)
	}

	// The instrumented run does NOT trap non-finite values: letting a
	// blowup propagate is how the recorder captures its provenance.
	rec := numerics.NewRecorder(m.Name+".ft", opts.Numerics)
	in, err := interp.New(v.Prog, interp.Config{
		Model:       machine,
		CycleBudget: 3 * bres.Cycles,
		Numerics:    rec,
	})
	if err != nil {
		return nil, err
	}
	rep := &ShadowReport{
		Model:      m.Name,
		Lowered:    a.Lowered(),
		TotalAtoms: len(atoms),
	}
	if _, err := in.Run(); err != nil {
		rep.RunFailure = err.Error()
	}
	rep.Profile = rec.Profile()

	// Score the search atoms from the profile's per-atom stats (the
	// profile also covers non-atom variables; those stay in
	// Profile.Atoms but not in the ranking).
	byName := make(map[string]numerics.AtomProfile, len(rep.Profile.Atoms))
	for _, ap := range rep.Profile.Atoms {
		byName[ap.QName] = ap
	}
	for _, at := range atoms {
		ap := byName[at.QName]
		rep.Atoms = append(rep.Atoms, ShadowAtom{
			QName:         at.QName,
			Score:         ap.MaxDivergence,
			Assigns:       ap.Assigns,
			RoundErr:      ap.RoundErrSum,
			Cancellations: ap.Cancellations,
			Catastrophic:  ap.Catastrophic,
		})
	}
	sort.SliceStable(rep.Atoms, func(i, j int) bool {
		x, y := &rep.Atoms[i], &rep.Atoms[j]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		if x.RoundErr != y.RoundErr {
			return x.RoundErr > y.RoundErr
		}
		return x.QName < y.QName
	})
	return rep, nil
}

// Top returns the n highest-scoring atoms' names.
func (r *ShadowReport) Top(n int) []string {
	if n > len(r.Atoms) {
		n = len(r.Atoms)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = r.Atoms[i].QName
	}
	return out
}

// Render formats the one-run ranking.
func (r *ShadowReport) Render(limit int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "shadow blame ranking for %s (one instrumented run, %d/%d atoms lowered)\n",
		r.Model, r.Lowered, r.TotalAtoms)
	if r.RunFailure != "" {
		fmt.Fprintf(&sb, "  run failed: %s (profile covers execution up to the failure)\n", r.RunFailure)
	}
	for i, a := range r.Atoms {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&sb, "  ... %d more atoms with score <= %.3e\n", len(r.Atoms)-limit, a.Score)
			break
		}
		detail := fmt.Sprintf("div %.3e, round %.3e, assigns %d", a.Score, a.RoundErr, a.Assigns)
		if a.Cancellations > 0 {
			detail += fmt.Sprintf(", cancellations %d (catastrophic %d)", a.Cancellations, a.Catastrophic)
		}
		fmt.Fprintf(&sb, "  %2d. %-62s %s\n", i+1, a.QName, detail)
	}
	return sb.String()
}
