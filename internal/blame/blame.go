// Package blame implements a one-at-a-time precision sensitivity
// analysis in the spirit of the guidance-only tools the paper surveys in
// §VII (ADAPT, Blame Analysis): it lowers each search atom alone,
// measures the resulting correctness-metric error and hotspot time, and
// ranks atoms by how much they *individually* resist lowering. Unlike
// the tuner it performs no search — it produces the ranking a domain
// expert would use to seed manual mixed-precision work, and it is a
// useful cross-check on the delta-debugging result: atoms in the
// 1-minimal set should rank at the top.
package blame

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/transform"
)

// AtomReport is the sensitivity of one atom.
type AtomReport struct {
	QName string
	// Status/RelError/Speedup of the variant lowering only this atom.
	Status   search.Status
	RelError float64
	Speedup  float64
	// Blame is the ranking score: relative error incurred, with runtime
	// failures scored above any finite error.
	Blame float64
}

// Report is a completed sensitivity analysis.
type Report struct {
	Model string
	Atoms []AtomReport // sorted by descending blame
}

// Analyze lowers each hotspot atom of the model in isolation and ranks
// the atoms by blame. Cost: one dynamic evaluation per atom.
func Analyze(m *models.Model, opts core.Options) (*Report, error) {
	t, err := core.New(m, opts)
	if err != nil {
		return nil, err
	}
	atoms := t.Atoms()
	rep := &Report{Model: m.Name}
	for _, a := range atoms {
		one := transform.Assignment{a.QName: 4}
		ev := t.Evaluate(one)
		ar := AtomReport{
			QName:    a.QName,
			Status:   ev.Status,
			RelError: ev.RelError,
			Speedup:  ev.Speedup,
		}
		switch ev.Status {
		case search.StatusError, search.StatusTimeout:
			// Failing to run at all out-blames any finite error.
			ar.Blame = 1e308
		default:
			ar.Blame = ev.RelError
		}
		rep.Atoms = append(rep.Atoms, ar)
	}
	rankAtoms(rep.Atoms)
	return rep, nil
}

// rankAtoms orders a sensitivity ranking deterministically: descending
// blame, with exact ties broken by ascending QName so equal-blame atoms
// (common when several atoms are individually harmless and score 0)
// never depend on evaluation order.
func rankAtoms(atoms []AtomReport) {
	sort.SliceStable(atoms, func(i, j int) bool {
		if atoms[i].Blame != atoms[j].Blame {
			return atoms[i].Blame > atoms[j].Blame
		}
		return atoms[i].QName < atoms[j].QName
	})
}

// Top returns the n most blamed atoms' names.
func (r *Report) Top(n int) []string {
	if n > len(r.Atoms) {
		n = len(r.Atoms)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = r.Atoms[i].QName
	}
	return out
}

// Render formats the ranking.
func (r *Report) Render(limit int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "precision sensitivity ranking for %s (one-at-a-time lowering)\n", r.Model)
	for i, a := range r.Atoms {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&sb, "  ... %d more atoms with blame <= %.3e\n",
				len(r.Atoms)-limit, a.Blame)
			break
		}
		detail := fmt.Sprintf("err %.3e, speedup %.3f", a.RelError, a.Speedup)
		if a.Status == search.StatusError || a.Status == search.StatusTimeout {
			detail = a.Status.String()
		}
		fmt.Fprintf(&sb, "  %2d. %-62s %s\n", i+1, a.QName, detail)
	}
	return sb.String()
}
