package blame

import (
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

// TestFunarcBlameRanksS1First: the atom the tuner's 1-minimal set keeps
// (funarc's accumulator s1) must top the one-at-a-time blame ranking.
func TestFunarcBlameRanksS1First(t *testing.T) {
	rep, err := Analyze(models.Funarc(), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Atoms) != 8 {
		t.Fatalf("ranked %d atoms, want 8", len(rep.Atoms))
	}
	if got := rep.Atoms[0].QName; got != "funarc_mod.funarc.s1" {
		t.Errorf("top-blamed atom %s, want funarc s1\n%s", got, rep.Render(0))
	}
	// Blames are sorted descending.
	for i := 1; i < len(rep.Atoms); i++ {
		if rep.Atoms[i].Blame > rep.Atoms[i-1].Blame {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
	// Every single-atom variant of funarc runs (no traps here).
	for _, a := range rep.Atoms {
		if a.Speedup <= 0 {
			t.Errorf("atom %s: no speedup measured (%v)", a.QName, a.Status)
		}
	}
	t.Logf("\n%s", rep.Render(8))
}

// TestMPASBlameMissesInteractions documents the structural limitation
// of guidance-only, one-at-a-time analyses (ADAPT, Blame Analysis —
// paper §VII) that motivates the paper's use of a *search*: MPAS-A's
// p0work knob only matters in combination (the base-state cancellation
// breaks when p0work AND the deviation sum are both 32-bit), so lowering
// it alone is harmless and blame analysis ranks it near zero — while the
// delta-debugging search correctly finds it as the 1-minimal set.
func TestMPASBlameMissesInteractions(t *testing.T) {
	if testing.Short() {
		t.Skip("one evaluation per atom")
	}
	rep, err := Analyze(models.MPASA(), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var p0 *AtomReport
	for i := range rep.Atoms {
		if rep.Atoms[i].QName == "atm_time_integration.atm_compute_dyn_tend_work.p0work" {
			p0 = &rep.Atoms[i]
		}
	}
	if p0 == nil {
		t.Fatal("p0work not analyzed")
	}
	if p0.Blame > 1e-6 {
		t.Errorf("p0work blamed %.3e in isolation; the interaction effect should be invisible one-at-a-time", p0.Blame)
	}
	// What blame *does* see: the prognostic state path (hh) carries the
	// largest individual rounding impact.
	top := rep.Top(3)
	sawState := false
	for _, q := range top {
		if q == "atm_time_integration.atm_srk3.hh" ||
			q == "atm_time_integration.atm_recover_large_step_variables_work.hh" {
			sawState = true
		}
	}
	if !sawState {
		t.Errorf("state path not top-blamed: %v", top)
	}
	t.Logf("\n%s", rep.Render(6))
}

func TestTopAndRenderBounds(t *testing.T) {
	rep := &Report{Model: "x", Atoms: []AtomReport{
		{QName: "a", Blame: 2}, {QName: "b", Blame: 1},
	}}
	if got := rep.Top(5); len(got) != 2 {
		t.Errorf("Top(5) over 2 atoms = %v", got)
	}
	out := rep.Render(1)
	if !contains(out, "1. a") || !contains(out, "1 more atoms") {
		t.Errorf("Render(1):\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
