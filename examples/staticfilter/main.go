// Static filtering (§V): screen variants before paying for dynamic runs.
//
// The paper's "Lessons Learned" proposes evaluating variants statically
// — a cost model penalizing mixed-precision interprocedural data flow
// (calls x elements) and a compiler-style vectorization report. This
// example screens three hand-picked MPAS-A variants and then runs the
// full ablation: the filtered search skips ~2/3 of the dynamic
// evaluations and still finds the same 1-minimal variant.
//
//	go run ./examples/staticfilter
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/staticeval"
	"repro/internal/transform"
)

func main() {
	m := models.MPASA()
	tuner, err := core.New(m, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	bl := tuner.BaselineInfo()
	filter := staticeval.NewFilterFromRegions(tuner.Program(), bl.Regions, bl.HotspotCycles)

	atoms := tuner.Atoms()
	cases := []struct {
		name string
		a    transform.Assignment
	}{
		{"uniform 32-bit hotspot", transform.Uniform(atoms, 4)},
		{"one flux argument left 64-bit", withKept(transform.Uniform(atoms, 4),
			"atm_time_integration.flux4.ua")},
		{"only the p0work knob 64-bit", withKept(transform.Uniform(atoms, 4),
			"atm_time_integration.atm_compute_dyn_tend_work.p0work")},
	}
	fmt.Println("static verdicts (no dynamic evaluation needed):")
	for _, c := range cases {
		v, err := filter.Evaluate(c.a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s %s\n", c.name, v)
	}

	fmt.Println("\nrunning the full ablation (two searches)...")
	r, err := experiments.Ablation(context.Background(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderAblation(r))
}

func withKept(a transform.Assignment, keep ...string) transform.Assignment {
	for _, q := range keep {
		a[q] = 8
	}
	return a
}
