// ADCIRC hotspot tuning: the "single critical parameter" result.
//
// The itpackv conjugate-gradient solver assembles its system by
// subtracting a large hydrostatic background (h0ref). The search
// discovers that keeping only that one parameter in 64-bit satisfies the
// domain expert's error threshold — but the solver's hot loops (an
// MPI_ALLREDUCE reduction and a recurrence sweep) cannot vectorize, so
// the payoff is a modest ~1.1-1.2x, exactly the paper's ADCIRC story.
//
//	go run ./examples/adcirc
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
)

func main() {
	tuner, err := core.New(models.ADCIRC(), core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	result, err := tuner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.Render())

	fmt.Println("\nwhy the ceiling is low (criterion 1 of the paper's §V):")
	for _, proc := range result.ProcNames() {
		pts := result.SortedProcVariants(proc)
		if len(pts) == 0 {
			continue
		}
		best := pts[0].Speedup
		for _, p := range pts {
			if p.Speedup > best {
				best = p.Speedup
			}
		}
		reason := ""
		switch {
		case strings.HasSuffix(proc, "peror"):
			reason = "dominated by MPI_ALLREDUCE - vendor reductions do not vectorize"
		case strings.HasSuffix(proc, "pjac"):
			reason = "SSOR recurrence carries a loop dependence - never vectorizes"
		case strings.HasSuffix(proc, "jcg"):
			reason = "driver; 32-bit h0ref quantizes the system -> fast but wrong (bimodal)"
		case strings.HasSuffix(proc, "pmult"):
			reason = "tridiagonal matvec - the only genuinely vectorizable kernel"
		}
		fmt.Printf("  %-18s best per-call speedup %6.3fx   %s\n", shortName(proc), best, reason)
	}

	fmt.Println("\n1-minimal 64-bit set:", result.Outcome.Minimal)
	fmt.Println("(the paper: \"the search ultimately identified a single parameter", "")
	fmt.Println(" that must remain in 64-bit to satisfy the error threshold\")")
}

func shortName(q string) string {
	if i := strings.LastIndex(q, "."); i >= 0 {
		return q[i+1:]
	}
	return q
}
