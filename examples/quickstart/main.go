// Quickstart: tune the funarc motivating example end to end.
//
// This walks the paper's full cycle on the smallest target: enumerate
// the 8 search atoms, run the delta-debugging search, and print the
// 1-minimal variant — which, as in the paper's Fig. 3, keeps only the
// accumulator s1 in 64-bit precision.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/search"
)

func main() {
	tuner, err := core.New(models.Funarc(), core.Options{
		Seed: 1,
		Progress: func(ev *search.Evaluation) {
			fmt.Printf("  tried %5.1f%% 32-bit -> %-7s speedup %.3f, err %.2e\n",
				ev.Pct32(), ev.Status, ev.Speedup, ev.RelError)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("funarc: %d search atoms, error threshold %.1e\n",
		tuner.BaselineInfo().AtomCount, tuner.BaselineInfo().Threshold)

	result, err := tuner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(result.Render())

	best := result.Best()
	if best == nil {
		log.Fatal("no passing variant found")
	}
	fmt.Printf("\nthe 1-minimal variant lowers %d of %d declarations;\n",
		best.Lowered, best.TotalAtoms)
	fmt.Printf("these must stay 64-bit: %v\n", result.Outcome.Minimal)
	fmt.Println("(the paper's Fig. 3 variant keeps exactly s1)")
}
