// Custom model: tune YOUR OWN code, not just the bundled surrogates.
//
// This example defines a new tuning target from scratch — a 1-D heat
// conduction solver written in FT (see docs/ft-language.md) — wires up
// its correctness metric, and runs the same delta-debugging search the
// case study uses. The solver's Crank-Nicolson half-step carries a
// cancellation against a large reference temperature, so the search
// discovers a small 64-bit core and lowers everything else.
//
//	go run ./examples/custommodel
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/models"

	"repro/internal/interp"
)

// heatSource is the user's model: module `heat` is the tuning target
// (hotspot); `heat_state` owns the 64-bit inputs and outputs.
const heatSource = `
module heat_state
  implicit none
  integer, parameter :: nx = 128
  integer, parameter :: nsteps = 40
  real(kind=8) :: temp(nx)
  real(kind=8) :: probe_series(nsteps)
end module heat_state

module heat
  implicit none
  integer, parameter :: n = 128
  real(kind=8), parameter :: tref = 1.6d7
  real(kind=8) :: flux(n)
contains
  subroutine step(t, kappa)
    real(kind=8), intent(inout) :: t(:)
    real(kind=8), intent(in) :: kappa
    real(kind=8) :: trefw, dev, keff
    integer :: i
    ! Effective conductivity from the deviation of the mean temperature
    ! against a large reference held in a work variable — the tunable
    ! cancellation (32-bit trefw quantizes dev to the reference's ulp).
    trefw = tref
    dev = (trefw + (t(1) + t(n / 2) + t(n)) / 3.0d0) - trefw
    keff = kappa * (1.0d0 + 0.002d0 * dev)
    do i = 2, n - 1
      flux(i) = keff * (t(i+1) - 2.0d0 * t(i) + t(i-1))
    end do
    flux(1) = 0.0d0
    flux(n) = 0.0d0
    do i = 2, n - 1
      t(i) = t(i) + flux(i)
    end do
  end subroutine step
end module heat

program main
  use heat_state
  use heat
  implicit none
  integer :: istep, i
  real(kind=8) :: x
  do i = 1, nx
    x = real(i - 1, 8) / real(nx - 1, 8)
    temp(i) = 250.0d0 + 80.0d0 * x * (1.0d0 - x) + 5.0d0 * sin(25.0d0 * x)
  end do
  do istep = 1, nsteps
    call step(temp, 0.2d0)
    probe_series(istep) = temp(nx / 3)
  end do
end program main
`

func main() {
	m := &models.Model{
		Name:        "heat1d",
		Description: "user-defined 1-D heat conduction solver",
		Source:      heatSource,
		Hotspot:     "heat",
		MetricName:  "relative error of a probe temperature, L2 over time",
		Extract: func(in *interp.Interp) ([]float64, error) {
			xs, ok := in.GlobalFloats("heat_state.probe_series")
			if !ok {
				return nil, fmt.Errorf("probe series missing")
			}
			return xs, nil
		},
		Compare: func(base, variant []float64) (float64, error) {
			return metrics.L2RelErr(base, variant)
		},
		ThresholdMode: models.ThresholdFixed,
		Threshold:     1e-6,
		NRuns:         1,
		NoiseRel:      0.01,
	}

	tuner, err := core.New(m, core.Options{Seed: 1, Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat1d: %d atoms, hotspot share %.1f%%\n",
		tuner.BaselineInfo().AtomCount, 100*tuner.BaselineInfo().HotspotShare)

	result, err := tuner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.Render())
}
