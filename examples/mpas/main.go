// MPAS-A hotspot tuning: the paper's headline result.
//
// Runs the performance-guided search over the atm_time_integration
// surrogate hotspot and shows the 1-minimal variant achieving ~1.95x
// hotspot speedup while incurring *less* error than the uniform 32-bit
// build — plus the Fig. 5 cluster structure and the Fig. 6 flux-function
// slowdowns caused by wrapper-blocked inlining.
//
//	go run ./examples/mpas
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/search"
)

func main() {
	tuner, err := core.New(models.MPASA(), core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	bl := tuner.BaselineInfo()
	fmt.Printf("MPAS-A surrogate: hotspot is %.1f%% of model CPU time (paper: ~15%%)\n",
		100*bl.HotspotShare)

	result, err := tuner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.Render())

	// The three Fig. 5 clusters.
	buckets := map[string][]float64{}
	for _, ev := range result.Outcome.Log.Evals {
		if ev.Status != search.StatusPass && ev.Status != search.StatusFail {
			continue
		}
		switch {
		case ev.Pct32() < 30:
			buckets["<30% 32-bit"] = append(buckets["<30% 32-bit"], ev.Speedup)
		case ev.Pct32() < 90:
			buckets["30-89% 32-bit"] = append(buckets["30-89% 32-bit"], ev.Speedup)
		default:
			buckets[">=90% 32-bit"] = append(buckets[">=90% 32-bit"], ev.Speedup)
		}
	}
	fmt.Println("\nFig. 5 clusters (hotspot speedups per 32-bit share):")
	for _, name := range []string{"<30% 32-bit", "30-89% 32-bit", ">=90% 32-bit"} {
		fmt.Printf("  %-14s %v\n", name, round2(buckets[name]))
	}

	// Fig. 6: flux-function per-call behaviour.
	fmt.Println("\nFig. 6 flux-function variants (per-call speedup):")
	for _, proc := range result.ProcNames() {
		if !strings.Contains(proc, "flux") {
			continue
		}
		for _, p := range result.SortedProcVariants(proc) {
			note := ""
			if p.Speedup < 0.2 && p.Speedup > 0 {
				note = "  <- wrapper defeated inlining (paper: 0.03-0.1x)"
			}
			fmt.Printf("  %-38s %6.3fx (%d vars lowered)%s\n", proc, p.Speedup, p.Lowered, note)
		}
	}
}

func round2(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*100+0.5)) / 100
	}
	return out
}
