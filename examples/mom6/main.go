// MOM6 hotspot tuning: the pathological case.
//
// The MOM_continuity_PPM surrogate shows both of the paper's MOM6
// failure modes: the iterative zonal_flux_adjust stalls in 32-bit
// (10-100x more iterations), and kind splits across the flux pipeline's
// large arrays buy per-element casting wrappers that can consume ~40% of
// the hotspot's CPU time. The search explores hundreds of variants under
// 9% runtime noise (Eq. 1 with n=7) and finds no worthwhile speedup.
//
//	go run ./examples/mom6
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/search"
)

func main() {
	m := models.MOM6()
	fmt.Printf("MOM6 surrogate: baseline noise %.0f%%, Eq. (1) n=%d, budget %d evaluations\n",
		100*m.NoiseRel, m.NRuns, m.BudgetEvals)

	tuner, err := core.New(m, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	result, err := tuner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.Render())

	// Outcome buckets (Table II row).
	row := result.TableIIRow()
	fmt.Printf("\noutcomes: pass %.1f%%, fail %.1f%%, runtime error %.1f%% (paper: 17.2 / 31.0 / 51.7)\n",
		row.PassPct, row.FailPct, row.ErrorPct)

	// The flux_adjust convergence collapse.
	fmt.Println("\nzonal_flux_adjust per-call speedups across unique variants:")
	var worst core.ProcPoint
	worst.Speedup = 1e9
	for _, p := range result.SortedProcVariants("mom_continuity_ppm.zonal_flux_adjust") {
		if p.Speedup > 0 && p.Speedup < worst.Speedup {
			worst = p
		}
	}
	fmt.Printf("  worst observed: %.3fx (paper band: 0.01-0.1x)\n", worst.Speedup)

	// Show a runtime-error detail: the precision-consistency abort.
	for _, ev := range result.Outcome.Log.Evals {
		if ev.Status == search.StatusError && strings.Contains(ev.Detail, "stop 4") {
			fmt.Printf("\nexample aborted variant (%d/%d lowered): %s\n",
				ev.Lowered, ev.TotalAtoms, ev.Detail)
			fmt.Println("(MOM6's barotropic consistency check: a residual far above the")
			fmt.Println(" working precision's roundoff means a mixed-precision chain broke it)")
			break
		}
	}
}
